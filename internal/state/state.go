// Package state turns the material states of an input deck into initial
// density and energy fields (the generate_chunk kernel's geometry logic).
//
// The geometry rules follow the mini-app: state 1 is the background and
// covers everything including halo cells; later states overwrite cells
// inside their region. Rectangles capture cells fully contained by the
// rectangle (vertex containment), circles capture cells whose centre lies
// within the radius, and points capture the single cell containing the
// point. Because containment is evaluated against physical coordinates, a
// sub-domain with the correct physical offsets generates exactly the same
// cells as a whole-domain run — the property the distributed ports rely on.
package state

import (
	"fmt"
	"math"

	"github.com/warwick-hpsc/tealeaf-go/internal/config"
	"github.com/warwick-hpsc/tealeaf-go/internal/grid"
)

// containEps absorbs floating-point jitter in vertex-containment tests so
// that state boundaries aligned with cell faces capture the intended cells.
const containEps = 1e-12

// Generate fills density and energy0 for an nx-by-ny chunk with halo depth
// `depth` over mesh m (the chunk's own sub-mesh). set is called for every
// cell, halo included, with interior-relative coordinates (so i ranges over
// [-depth, nx+depth)). Calls are made in row-major order, one state at a
// time, making the fill deterministic.
func Generate(m *grid.Mesh, states []config.State, depth int, set func(i, j int, density, energy float64)) error {
	if len(states) == 0 {
		return fmt.Errorf("state: no states to generate")
	}
	if states[0].Index != 1 {
		return fmt.Errorf("state: first state must be state 1 (the background), got state %d", states[0].Index)
	}
	bg := states[0]
	for j := -depth; j < m.Ny+depth; j++ {
		for i := -depth; i < m.Nx+depth; i++ {
			set(i, j, bg.Density, bg.Energy)
		}
	}
	for _, st := range states[1:] {
		for j := -depth; j < m.Ny+depth; j++ {
			for i := -depth; i < m.Nx+depth; i++ {
				if Contains(st, m, i, j) {
					set(i, j, st.Density, st.Energy)
				}
			}
		}
	}
	return nil
}

// Contains reports whether cell (i, j) of mesh m belongs to the state's
// region.
func Contains(st config.State, m *grid.Mesh, i, j int) bool {
	switch st.Geometry {
	case config.GeomRectangle:
		return m.VertexX(i) >= st.XMin-containEps && m.VertexX(i+1) <= st.XMax+containEps &&
			m.VertexY(j) >= st.YMin-containEps && m.VertexY(j+1) <= st.YMax+containEps
	case config.GeomCircular:
		dx := m.CellX(i) - st.XMin
		dy := m.CellY(j) - st.YMin
		return math.Sqrt(dx*dx+dy*dy) <= st.Radius+containEps
	case config.GeomPoint:
		return m.VertexX(i) <= st.XMin && st.XMin < m.VertexX(i+1) &&
			m.VertexY(j) <= st.YMin && st.YMin < m.VertexY(j+1)
	default:
		return false
	}
}
