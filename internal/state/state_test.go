package state

import (
	"testing"
	"testing/quick"

	"github.com/warwick-hpsc/tealeaf-go/internal/config"
	"github.com/warwick-hpsc/tealeaf-go/internal/grid"
)

func mesh(t *testing.T, nx, ny int) *grid.Mesh {
	t.Helper()
	m, err := grid.NewMesh(0, 10, 0, 10, nx, ny)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestBackgroundCoversHalo(t *testing.T) {
	m := mesh(t, 10, 10)
	states := []config.State{{Index: 1, Density: 7, Energy: 3}}
	d := grid.New(10, 10)
	e := grid.New(10, 10)
	if err := Generate(m, states, 2, func(i, j int, density, energy float64) {
		d.Set(i, j, density)
		e.Set(i, j, energy)
	}); err != nil {
		t.Fatal(err)
	}
	for j := -2; j < 12; j++ {
		for i := -2; i < 12; i++ {
			if d.At(i, j) != 7 || e.At(i, j) != 3 {
				t.Fatalf("cell (%d,%d) = (%g,%g), want (7,3)", i, j, d.At(i, j), e.At(i, j))
			}
		}
	}
}

func TestRectangleVertexContainment(t *testing.T) {
	// 10x10 cells over [0,10]: state 2 covers [2,5]x[3,7] -> exactly cells
	// i in [2,5), j in [3,7).
	m := mesh(t, 10, 10)
	states := []config.State{
		{Index: 1, Density: 1, Energy: 1},
		{Index: 2, Density: 2, Energy: 2, Geometry: config.GeomRectangle,
			XMin: 2, XMax: 5, YMin: 3, YMax: 7},
	}
	d := grid.New(10, 10)
	if err := Generate(m, states, 2, func(i, j int, density, _ float64) {
		d.Set(i, j, density)
	}); err != nil {
		t.Fatal(err)
	}
	for j := 0; j < 10; j++ {
		for i := 0; i < 10; i++ {
			inside := i >= 2 && i < 5 && j >= 3 && j < 7
			want := 1.0
			if inside {
				want = 2
			}
			if d.At(i, j) != want {
				t.Errorf("cell (%d,%d) = %g, want %g", i, j, d.At(i, j), want)
			}
		}
	}
}

func TestPartialCellsExcluded(t *testing.T) {
	// A rectangle ending mid-cell must not capture the partially-covered
	// cell (TeaLeaf's full-containment rule).
	m := mesh(t, 10, 10)
	st := config.State{Index: 2, Density: 2, Energy: 2, Geometry: config.GeomRectangle,
		XMin: 0, XMax: 2.5, YMin: 0, YMax: 10}
	if !Contains(st, m, 1, 0) {
		t.Error("cell 1 fully inside must be captured")
	}
	if Contains(st, m, 2, 0) {
		t.Error("cell 2 is only half covered and must not be captured")
	}
}

func TestCircleCentreContainment(t *testing.T) {
	m := mesh(t, 10, 10)
	st := config.State{Index: 2, Density: 2, Energy: 2, Geometry: config.GeomCircular,
		XMin: 5, YMin: 5, Radius: 2}
	// Cell (4,4) has centre (4.5,4.5), distance ~0.707 -> in.
	if !Contains(st, m, 4, 4) {
		t.Error("cell (4,4) must be inside the circle")
	}
	// Cell (7,5) centre (7.5,5.5): distance ~2.55 -> out.
	if Contains(st, m, 7, 5) {
		t.Error("cell (7,5) must be outside the circle")
	}
	// Exactly on the radius (cell centre (5.5,7.5), distance 2.55? choose
	// centre (5,7.5): no cell there; test the boundary epsilon with centre
	// (5.5, 7.5) => dist = sqrt(0.25+6.25)... instead: centre (5.5,5.5)
	// dist sqrt(0.5) < 2 -> in.
	if !Contains(st, m, 5, 5) {
		t.Error("cell (5,5) must be inside the circle")
	}
}

func TestPointCapturesSingleCell(t *testing.T) {
	m := mesh(t, 10, 10)
	states := []config.State{
		{Index: 1, Density: 1, Energy: 1},
		{Index: 2, Density: 9, Energy: 9, Geometry: config.GeomPoint, XMin: 3.5, YMin: 6.5},
	}
	count := 0
	if err := Generate(m, states, 0, func(i, j int, density, _ float64) {
		if density == 9 {
			count++
			if i != 3 || j != 6 {
				t.Errorf("point captured cell (%d,%d), want (3,6)", i, j)
			}
		}
	}); err != nil {
		t.Fatal(err)
	}
	// Generate calls set once for the background then once for the point
	// overwrite.
	if count != 1 {
		t.Errorf("point captured %d cells, want 1", count)
	}
}

func TestLaterStatesOverwrite(t *testing.T) {
	m := mesh(t, 4, 4)
	states := []config.State{
		{Index: 1, Density: 1, Energy: 1},
		{Index: 2, Density: 2, Energy: 2, Geometry: config.GeomRectangle, XMin: 0, XMax: 10, YMin: 0, YMax: 10},
		{Index: 3, Density: 3, Energy: 3, Geometry: config.GeomRectangle, XMin: 0, XMax: 10, YMin: 0, YMax: 5},
	}
	d := grid.New(4, 4)
	if err := Generate(m, states, 0, func(i, j int, density, _ float64) {
		d.Set(i, j, density)
	}); err != nil {
		t.Fatal(err)
	}
	if d.At(0, 0) != 3 || d.At(0, 3) != 2 {
		t.Errorf("overwrite order wrong: bottom %g (want 3), top %g (want 2)", d.At(0, 0), d.At(0, 3))
	}
}

func TestGenerateErrors(t *testing.T) {
	m := mesh(t, 4, 4)
	if err := Generate(m, nil, 0, func(int, int, float64, float64) {}); err == nil {
		t.Error("expected error for empty state list")
	}
	bad := []config.State{{Index: 2, Density: 1, Energy: 1}}
	if err := Generate(m, bad, 0, func(int, int, float64, float64) {}); err == nil {
		t.Error("expected error when state 1 is missing")
	}
}

// TestDecompositionInvariance (property): generating on a randomly-chosen
// sub-mesh must reproduce the corresponding region of a whole-mesh
// generation — the invariant distributed ports rely on.
func TestDecompositionInvariance(t *testing.T) {
	const nx, ny = 24, 18
	parent := mesh(t, nx, ny)
	parent, _ = grid.NewMesh(0, 10, 0, 10, nx, ny)
	states := []config.State{
		{Index: 1, Density: 100, Energy: 0.0001},
		{Index: 2, Density: 0.1, Energy: 25, Geometry: config.GeomRectangle, XMin: 0, XMax: 1, YMin: 1, YMax: 2},
		{Index: 3, Density: 5, Energy: 10, Geometry: config.GeomCircular, XMin: 7, YMin: 7, Radius: 2},
	}
	whole := grid.New(nx, ny)
	if err := Generate(parent, states, 2, func(i, j int, density, _ float64) {
		whole.Set(i, j, density)
	}); err != nil {
		t.Fatal(err)
	}
	f := func(x0u, y0u, wu, hu uint8) bool {
		x0 := int(x0u) % (nx - 1)
		y0 := int(y0u) % (ny - 1)
		w := 1 + int(wu)%(nx-x0)
		h := 1 + int(hu)%(ny-y0)
		sub := parent.Sub(x0, y0, w, h)
		local := grid.NewField(w, h, 0)
		err := Generate(sub, states, 0, func(i, j int, density, _ float64) {
			local.Set(i, j, density) // later states overwrite, like real ports
		})
		if err != nil {
			return false
		}
		for j := 0; j < h; j++ {
			for i := 0; i < w; i++ {
				if local.At(i, j) != whole.At(x0+i, y0+j) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
