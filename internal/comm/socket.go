package comm

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// This file is the socket transport: the same World contract carried over
// TCP or Unix-domain stream sockets between OS processes. The design in one
// paragraph: every local rank owns an endpoint (one listener) and one
// outbound link per peer, so each ordered rank pair has a dedicated simplex
// connection. Payloads travel as length-prefixed frames — a fixed header,
// the float64 payload, and a CRC-32C trailer over the whole frame (the
// application-level payload CRC from the checksum layer rides inside the
// header, untouched). Data frames carry per-link sequence numbers; every
// frame piggybacks a cumulative ack of the reverse direction. Senders retain
// unacknowledged frames and replay them after a reconnect (dial with bounded
// retry, exponential backoff and jitter); receivers deduplicate by sequence
// number, so delivery stays exactly-once and in-order across transient
// partitions. Idle links exchange heartbeat frames, and a peer silent past
// the liveness window surfaces as a RankError wrapping ErrPeerLost — the
// same typed failure the in-process fault injector produces.

// ErrPeerLost marks a peer rank declared dead by the transport: its
// heartbeats stopped past the liveness window, or redialling it exhausted
// the dial budget.
var ErrPeerLost = errors.New("comm: peer rank lost")

// Frame kinds.
const (
	frameHello byte = iota + 1 // first frame on every connection: identifies the dialling rank
	frameData                  // one point-to-point message
	frameBeat                  // heartbeat / ack carrier
)

// frameHeaderLen is the fixed header: kind(1) flags(1) src(4) dst(4) tag(8)
// seq(8) ack(8) appCRC(4) count(4).
const frameHeaderLen = 42

// maxFrameElems bounds a frame's payload element count — far above any halo
// strip or gathered field this code ships, low enough to reject a corrupt
// length prefix before it turns into a giant allocation.
const maxFrameElems = 1 << 26

// wireFrame is one frame queued on an outbound link.
type wireFrame struct {
	kind   byte
	summed bool
	src    int
	dst    int
	tag    int
	seq    uint64 // data frames only, assigned at enqueue
	crc    uint32 // application-level payload CRC (summed only)
	data   []float64
}

// wireCounters are the transport's cumulative statistics.
type wireCounters struct {
	framesSent  atomic.Uint64
	framesRecv  atomic.Uint64
	bytesSent   atomic.Uint64
	bytesRecv   atomic.Uint64
	dials       atomic.Uint64
	reconnects  atomic.Uint64
	retransmits atomic.Uint64
	dups        atomic.Uint64
	crcErrs     atomic.Uint64
	hbMisses    atomic.Uint64
}

// socketTransport implements Transport over stream sockets.
type socketTransport struct {
	w       *World
	opt     SocketOptions
	eps     []*endpoint
	epOf    []*endpoint // by rank; nil for ranks hosted by other processes
	done    chan struct{}
	closed  atomic.Bool
	cleanup func()
	wg      sync.WaitGroup

	connMu sync.Mutex
	conns  map[net.Conn]struct{}

	stats wireCounters
}

// endpoint is one local rank's wire presence: its listener, its outbound
// links, and its per-peer receive state (liveness timestamps and the
// delivered-sequence watermarks that drive deduplication and acks).
type endpoint struct {
	tr       *socketTransport
	rank     int
	ln       net.Listener
	links    []*outLink      // by peer rank; nil for self
	lastSeen []atomic.Int64  // unix nanos of the last frame from each peer (0 = never)
	ackOut   []atomic.Uint64 // highest contiguous data seq delivered from each peer
	seqMu    []sync.Mutex    // serialises the dedup-check-and-deliver per peer
}

// outLink is the ordered, reliable outbound lane from one local rank to one
// peer. The queue is the only producer-shared state; everything else —
// the connection, the retain buffer, the encode scratch — is owned by the
// link's writer goroutine, so frame encoding races with nothing.
type outLink struct {
	tr   *socketTransport
	ep   *endpoint
	src  int
	peer int

	mu      sync.Mutex
	cond    *sync.Cond
	queue   []wireFrame
	nextSeq uint64 // last assigned data sequence number (under mu)

	acked atomic.Uint64 // highest seq the peer has acknowledged

	// Writer-goroutine state.
	retained      []wireFrame // sent-but-unacked data frames, replayed on reconnect
	sentSeq       uint64      // highest seq written on the current connection
	maxSent       uint64      // highest seq ever written (retransmit accounting)
	conn          net.Conn
	everConnected bool
	enc           []byte
	rng           *rand.Rand
}

// newSocketTransport builds the endpoints and links for every local rank
// and starts their accept, monitor and writer goroutines.
func newSocketTransport(w *World, opt SocketOptions, cleanup func()) (*socketTransport, error) {
	tr := &socketTransport{
		w:       w,
		opt:     opt,
		epOf:    make([]*endpoint, w.size),
		done:    make(chan struct{}),
		cleanup: func() {},
		conns:   make(map[net.Conn]struct{}),
	}
	for _, rank := range w.local {
		ln, err := net.Listen(opt.network(), opt.Addrs[rank])
		if err != nil {
			tr.Close()
			return nil, fmt.Errorf("comm: rank %d: listen %s %s: %w", rank, opt.network(), opt.Addrs[rank], err)
		}
		ep := &endpoint{
			tr:       tr,
			rank:     rank,
			ln:       ln,
			links:    make([]*outLink, w.size),
			lastSeen: make([]atomic.Int64, w.size),
			ackOut:   make([]atomic.Uint64, w.size),
			seqMu:    make([]sync.Mutex, w.size),
		}
		for p := 0; p < w.size; p++ {
			if p == rank {
				continue
			}
			l := &outLink{
				tr:   tr,
				ep:   ep,
				src:  rank,
				peer: p,
				rng:  rand.New(rand.NewSource(int64(rank)<<16 | int64(p))),
			}
			l.cond = sync.NewCond(&l.mu)
			ep.links[p] = l
		}
		tr.eps = append(tr.eps, ep)
		tr.epOf[rank] = ep
	}
	// Cleanup only once construction can no longer fail halfway: Close on a
	// partial transport must not remove a directory it will retry into.
	tr.cleanup = cleanup
	for _, ep := range tr.eps {
		tr.wg.Add(2)
		go ep.acceptLoop()
		go ep.monitor()
		for _, l := range ep.links {
			if l != nil {
				tr.wg.Add(1)
				go l.run()
			}
		}
	}
	return tr, nil
}

// Deliver implements Transport: self-sends short-circuit to the local
// mailbox; everything else is framed onto the sender's link to dst. The
// payload buffer travels with the frame and returns to the pool when the
// peer acknowledges it.
func (t *socketTransport) Deliver(dst int, msg message) error {
	if t.closed.Load() {
		return errors.New("comm: socket transport closed")
	}
	ep := t.epOf[msg.src]
	if ep == nil {
		return fmt.Errorf("comm: rank %d is not hosted by this process", msg.src)
	}
	if dst == msg.src {
		t.w.boxes[dst].put(msg)
		return nil
	}
	return ep.links[dst].enqueue(wireFrame{
		kind:   frameData,
		summed: msg.summed,
		src:    msg.src,
		dst:    dst,
		tag:    msg.tag,
		crc:    msg.crc,
		data:   msg.data,
	})
}

// Stats implements Transport.
func (t *socketTransport) Stats() TransportStats {
	return TransportStats{
		FramesSent:      t.stats.framesSent.Load(),
		FramesRecv:      t.stats.framesRecv.Load(),
		BytesSent:       t.stats.bytesSent.Load(),
		BytesRecv:       t.stats.bytesRecv.Load(),
		Dials:           t.stats.dials.Load(),
		Reconnects:      t.stats.reconnects.Load(),
		Retransmits:     t.stats.retransmits.Load(),
		DupsDropped:     t.stats.dups.Load(),
		FrameCRCErrors:  t.stats.crcErrs.Load(),
		HeartbeatMisses: t.stats.hbMisses.Load(),
	}
}

// Close implements Transport: stops the monitors, closes every listener and
// connection, waits for all goroutines, and removes any auto-created socket
// directory. Idempotent.
func (t *socketTransport) Close() error {
	if !t.closed.CompareAndSwap(false, true) {
		return nil
	}
	close(t.done)
	for _, ep := range t.eps {
		ep.ln.Close()
		for _, l := range ep.links {
			if l != nil {
				l.cond.Broadcast()
			}
		}
	}
	t.connMu.Lock()
	for c := range t.conns {
		c.Close()
	}
	t.connMu.Unlock()
	t.wg.Wait()
	t.cleanup()
	return nil
}

// track registers a connection for Close-time teardown.
func (t *socketTransport) track(c net.Conn) {
	t.connMu.Lock()
	t.conns[c] = struct{}{}
	t.connMu.Unlock()
}

// ---- outbound link ----

// enqueue appends a frame to the link's queue, assigning data frames their
// sequence number under the queue lock so queue order is sequence order.
func (l *outLink) enqueue(f wireFrame) error {
	l.mu.Lock()
	if l.tr.closed.Load() {
		l.mu.Unlock()
		return errors.New("comm: socket transport closed")
	}
	if f.kind == frameData {
		l.nextSeq++
		f.seq = l.nextSeq
	}
	l.queue = append(l.queue, f)
	l.mu.Unlock()
	l.cond.Signal()
	return nil
}

// pop blocks until a frame is queued or the transport closes.
func (l *outLink) pop() (wireFrame, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	for len(l.queue) == 0 {
		if l.tr.closed.Load() {
			return wireFrame{}, false
		}
		l.cond.Wait()
	}
	f := l.queue[0]
	n := copy(l.queue, l.queue[1:])
	l.queue = l.queue[:n]
	return f, true
}

// run is the link's writer goroutine: it drains the queue, retains data
// frames until acknowledged, and owns the connection lifecycle.
func (l *outLink) run() {
	defer l.tr.wg.Done()
	defer l.dropConn()
	for {
		f, ok := l.pop()
		if !ok {
			return
		}
		l.prune()
		if f.kind == frameData {
			l.retained = append(l.retained, f)
			l.flush()
		} else {
			l.writeControl(f)
		}
	}
}

// prune releases retained frames the peer has acknowledged, returning their
// payload buffers to the pool. Only the writer touches the retain buffer,
// so a frame's payload is never read and recycled concurrently.
func (l *outLink) prune() {
	a := l.acked.Load()
	i := 0
	for i < len(l.retained) && l.retained[i].seq <= a {
		l.tr.w.putBuf(l.retained[i].data)
		i++
	}
	if i > 0 {
		l.retained = l.retained[:copy(l.retained, l.retained[i:])]
	}
}

// flush writes every retained frame not yet sent on the current connection,
// (re)dialling as needed. It returns once the retain buffer is flushed, the
// transport closes, or the world aborts (a dial that exhausts its budget
// aborts the world with ErrPeerLost).
func (l *outLink) flush() {
	for {
		if l.tr.closed.Load() || l.tr.w.aborted.Load() {
			return
		}
		if l.conn == nil && !l.dial() {
			return
		}
		clean := true
		for i := range l.retained {
			f := &l.retained[i]
			if f.seq <= l.sentSeq {
				continue
			}
			if inj := l.tr.opt.Injector; inj != nil {
				v := inj.OnFrame(l.src, l.peer)
				if v.Cut {
					l.dropConn()
					clean = false
					break
				}
				if v.Delay > 0 {
					time.Sleep(v.Delay)
				}
			}
			if err := l.writeFrame(*f); err != nil {
				l.dropConn()
				clean = false
				break
			}
			if f.seq <= l.maxSent {
				l.tr.stats.retransmits.Add(1)
			} else {
				l.maxSent = f.seq
			}
			l.sentSeq = f.seq
		}
		if clean {
			return
		}
		time.Sleep(time.Millisecond)
	}
}

// writeControl sends a heartbeat best-effort: it dials if needed (so idle
// links establish liveness early) but never retries a failed write — the
// next beat is due in one interval anyway.
func (l *outLink) writeControl(f wireFrame) {
	if l.tr.closed.Load() || l.tr.w.aborted.Load() {
		return
	}
	if l.conn == nil && !l.dial() {
		return
	}
	if inj := l.tr.opt.Injector; inj != nil {
		v := inj.OnFrame(l.src, l.peer)
		if v.Cut {
			l.dropConn()
			return
		}
		if v.Delay > 0 {
			time.Sleep(v.Delay)
		}
	}
	if err := l.writeFrame(f); err != nil {
		l.dropConn()
	}
}

// dial establishes the link's connection with bounded retry, exponential
// backoff and jitter. Exhausting the dial budget declares the peer lost and
// aborts the world.
func (l *outLink) dial() bool {
	tr := l.tr
	opt := &tr.opt
	budget := opt.dialTimeout()
	deadline := time.Now().Add(budget)
	backoff := 5 * time.Millisecond
	var lastErr error
	for {
		if tr.closed.Load() || tr.w.aborted.Load() {
			return false
		}
		cut := false
		if inj := opt.Injector; inj != nil {
			cut = inj.OnFrame(l.src, l.peer).Cut
		}
		if cut {
			lastErr = errors.New("link cut by fault injector")
		} else if d := time.Until(deadline); d > 0 {
			if d > time.Second {
				d = time.Second
			}
			c, err := net.DialTimeout(opt.network(), opt.Addrs[l.peer], d)
			if err == nil {
				l.conn = c
				l.sentSeq = l.acked.Load()
				if herr := l.writeFrame(wireFrame{kind: frameHello, src: l.src, dst: l.peer}); herr != nil {
					l.dropConn()
					lastErr = herr
				} else {
					tr.track(c)
					tr.stats.dials.Add(1)
					if l.everConnected {
						tr.stats.reconnects.Add(1)
					}
					l.everConnected = true
					return true
				}
			} else {
				lastErr = err
			}
		}
		if time.Now().After(deadline) {
			tr.w.Abort(&RankError{Rank: l.peer, Step: -1, Cause: fmt.Errorf(
				"comm: rank %d: dialling rank %d failed for %v (%v): %w",
				l.src, l.peer, budget, lastErr, ErrPeerLost)})
			return false
		}
		jitter := time.Duration(l.rng.Int63n(int64(backoff)/2 + 1))
		time.Sleep(backoff + jitter)
		if backoff < 500*time.Millisecond {
			backoff *= 2
		}
	}
}

// dropConn closes and forgets the current connection (replay state is the
// retain buffer, which survives).
func (l *outLink) dropConn() {
	if l.conn != nil {
		l.conn.Close()
		l.conn = nil
	}
}

// writeFrame encodes f into the link's scratch buffer and writes it in one
// call. Layout after the 4-byte length prefix: the fixed header, the payload
// as little-endian float64 bits, and a CRC-32C trailer over header+payload.
// The current cumulative ack is stamped on every frame.
func (l *outLink) writeFrame(f wireFrame) error {
	n := 4 + frameHeaderLen + 8*len(f.data) + 4
	if cap(l.enc) < n {
		l.enc = make([]byte, n)
	}
	b := l.enc[:n]
	binary.LittleEndian.PutUint32(b[0:], uint32(n-4))
	b[4] = f.kind
	var flags byte
	if f.summed {
		flags |= 1
	}
	b[5] = flags
	binary.LittleEndian.PutUint32(b[6:], uint32(int32(f.src)))
	binary.LittleEndian.PutUint32(b[10:], uint32(int32(f.dst)))
	binary.LittleEndian.PutUint64(b[14:], uint64(int64(f.tag)))
	binary.LittleEndian.PutUint64(b[22:], f.seq)
	binary.LittleEndian.PutUint64(b[30:], l.ep.ackOut[l.peer].Load())
	binary.LittleEndian.PutUint32(b[38:], f.crc)
	binary.LittleEndian.PutUint32(b[42:], uint32(len(f.data)))
	off := 46
	for _, v := range f.data {
		binary.LittleEndian.PutUint64(b[off:], math.Float64bits(v))
		off += 8
	}
	binary.LittleEndian.PutUint32(b[off:], crc32.Checksum(b[4:off], castagnoli))
	if _, err := l.conn.Write(b); err != nil {
		return err
	}
	l.tr.stats.framesSent.Add(1)
	l.tr.stats.bytesSent.Add(uint64(n))
	return nil
}

// ---- inbound ----

// acceptLoop accepts peer connections for one endpoint.
func (ep *endpoint) acceptLoop() {
	defer ep.tr.wg.Done()
	for {
		c, err := ep.ln.Accept()
		if err != nil {
			return // listener closed
		}
		ep.tr.track(c)
		ep.tr.wg.Add(1)
		go ep.serveConn(c)
	}
}

// touch refreshes the liveness timestamp for peer.
func (ep *endpoint) touch(peer int) {
	ep.lastSeen[peer].Store(time.Now().UnixNano())
}

// ackLink advances the peer's cumulative acknowledgement of our outbound
// sequence numbers; the link's writer releases the retained payloads.
func (ep *endpoint) ackLink(peer int, ack uint64) {
	l := ep.links[peer]
	if l == nil {
		return
	}
	for {
		cur := l.acked.Load()
		if ack <= cur || l.acked.CompareAndSwap(cur, ack) {
			return
		}
	}
}

// serveConn reads frames off one accepted connection: CRC-verify, identify
// the peer from its hello, refresh liveness, process piggybacked acks, and
// deliver data frames exactly once (duplicates from a replay are dropped; a
// sequence gap is unmaskable loss and aborts the world). A frame failing
// the wire CRC drops the connection — the sender replays from its retain
// buffer on reconnect, which is the transport-level retransmission path.
func (ep *endpoint) serveConn(c net.Conn) {
	defer ep.tr.wg.Done()
	defer c.Close()
	w := ep.tr.w
	var lenBuf [4]byte
	var body []byte
	peer := -1
	for {
		if _, err := io.ReadFull(c, lenBuf[:]); err != nil {
			return
		}
		n := binary.LittleEndian.Uint32(lenBuf[:])
		if n < frameHeaderLen+4 || n > frameHeaderLen+8*maxFrameElems+4 {
			ep.tr.stats.crcErrs.Add(1)
			return
		}
		if cap(body) < int(n) {
			body = make([]byte, n)
		}
		b := body[:n]
		if _, err := io.ReadFull(c, b); err != nil {
			return
		}
		if crc32.Checksum(b[:n-4], castagnoli) != binary.LittleEndian.Uint32(b[n-4:]) {
			ep.tr.stats.crcErrs.Add(1)
			return
		}
		ep.tr.stats.framesRecv.Add(1)
		ep.tr.stats.bytesRecv.Add(uint64(n) + 4)
		kind := b[0]
		src := int(int32(binary.LittleEndian.Uint32(b[2:])))
		if kind == frameHello {
			if src < 0 || src >= w.size || src == ep.rank {
				return
			}
			peer = src
			ep.touch(peer)
			continue
		}
		if peer < 0 || src != peer {
			return // frames before hello, or a mid-stream identity change
		}
		ep.touch(peer)
		ep.ackLink(peer, binary.LittleEndian.Uint64(b[26:]))
		if kind != frameData {
			continue
		}
		dst := int(int32(binary.LittleEndian.Uint32(b[6:])))
		count := int(binary.LittleEndian.Uint32(b[38:]))
		if dst != ep.rank || count > maxFrameElems || frameHeaderLen+8*count+4 != int(n) {
			w.Abort(&RankError{Rank: peer, Step: -1, Cause: fmt.Errorf(
				"comm: rank %d: malformed data frame from rank %d (dst %d, count %d, len %d)",
				ep.rank, peer, dst, count, n)})
			return
		}
		tag := int(int64(binary.LittleEndian.Uint64(b[10:])))
		seq := binary.LittleEndian.Uint64(b[18:])
		ep.seqMu[peer].Lock()
		last := ep.ackOut[peer].Load()
		switch {
		case seq <= last:
			ep.tr.stats.dups.Add(1)
		case seq == last+1:
			data := w.getBuf(count)
			for i := 0; i < count; i++ {
				data[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[frameHeaderLen+8*i:]))
			}
			w.boxes[dst].put(message{
				src:    src,
				tag:    tag,
				data:   data,
				crc:    binary.LittleEndian.Uint32(b[34:]),
				summed: b[1]&1 != 0,
			})
			ep.ackOut[peer].Store(seq)
		default:
			ep.seqMu[peer].Unlock()
			w.Abort(&RankError{Rank: peer, Step: -1, Cause: fmt.Errorf(
				"comm: rank %d: sequence gap from rank %d (got %d, want %d): unmaskable frame loss",
				ep.rank, peer, seq, last+1)})
			return
		}
		ep.seqMu[peer].Unlock()
	}
}

// monitor is the endpoint's heartbeat loop: every interval it queues a beat
// to each peer (which doubles as the ack carrier for idle links) and checks
// each peer's liveness window. The window only starts counting once a peer
// has been heard from at all — a peer that never connects is caught by the
// dial budget on the sending side instead.
func (ep *endpoint) monitor() {
	defer ep.tr.wg.Done()
	opt := &ep.tr.opt
	if opt.HeartbeatInterval < 0 {
		return
	}
	interval := opt.heartbeatInterval()
	timeout := opt.heartbeatTimeout()
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for {
		select {
		case <-ep.tr.done:
			return
		case <-tick.C:
		}
		if ep.tr.w.aborted.Load() {
			return
		}
		now := time.Now().UnixNano()
		for peer, l := range ep.links {
			if l == nil {
				continue
			}
			l.enqueue(wireFrame{kind: frameBeat, src: ep.rank, dst: peer}) //nolint:errcheck // closing transport drops beats
			last := ep.lastSeen[peer].Load()
			if last != 0 && now-last > int64(timeout) {
				ep.tr.stats.hbMisses.Add(1)
				ep.tr.w.Abort(&RankError{Rank: peer, Step: -1, Cause: fmt.Errorf(
					"comm: rank %d: no frames from rank %d for %v: %w",
					ep.rank, peer, timeout, ErrPeerLost)})
				return
			}
		}
	}
}
