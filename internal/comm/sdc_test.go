package comm

import (
	"context"
	"errors"
	"math"
	"runtime"
	"testing"
	"time"
)

// TestChecksumCleanPath: with checksums on and no faults, payloads and
// reductions pass verification untouched and the counters stay zero.
func TestChecksumCleanPath(t *testing.T) {
	w := NewWorld(4)
	w.SetChecksums(true)
	err := w.Run(func(r *Rank) {
		data := []float64{1, 2, 3, float64(r.ID())}
		next := (r.ID() + 1) % r.Size()
		prev := (r.ID() + r.Size() - 1) % r.Size()
		got := r.Sendrecv(next, 7, data, prev, 7)
		if len(got) != 4 || got[3] != float64(prev) {
			t.Errorf("rank %d: bad payload %v", r.ID(), got)
		}
		if sum := r.AllreduceSum(1); sum != 4 {
			t.Errorf("rank %d: allreduce sum = %v, want 4", r.ID(), sum)
		}
	})
	if err != nil {
		t.Fatalf("clean checksummed run failed: %v", err)
	}
	if d, rec := w.ChecksumStats(); d != 0 || rec != 0 {
		t.Fatalf("clean run recorded detections: detected=%d recovered=%d", d, rec)
	}
}

// TestChecksumRepairsWireFlip: a non-sticky flip corrupts only the wire
// copy; the receive detects the mismatch and silently repairs it from the
// retransmission copy, so the run succeeds with the pristine value.
func TestChecksumRepairsWireFlip(t *testing.T) {
	w := NewWorld(2)
	w.SetChecksums(true)
	sched := &Schedule{Rules: []Rule{
		{Action: ActFlip, Rank: 0, Op: 1, Tag: -1, Bit: 52, Idx: 1},
	}}
	w.SetFaultInjector(sched)
	err := w.Run(func(r *Rank) {
		if r.ID() == 0 {
			r.Send(1, 3, []float64{10, 20, 30})
		} else {
			got := r.Recv(0, 3)
			if got[1] != 20 {
				t.Errorf("repaired payload element = %v, want 20", got[1])
			}
		}
	})
	if err != nil {
		t.Fatalf("repairable flip failed the run: %v", err)
	}
	if d, rec := w.ChecksumStats(); d != 1 || rec != 1 {
		t.Fatalf("detected=%d recovered=%d, want 1/1", d, rec)
	}
}

// TestChecksumStickyFlipEscalates: a sticky flip hits the retransmission
// copy too, so repair is impossible and the receive escalates a typed
// CorruptionError through the RankError chain.
func TestChecksumStickyFlipEscalates(t *testing.T) {
	w := NewWorld(2)
	w.SetChecksums(true)
	sched := &Schedule{Rules: []Rule{
		{Action: ActFlip, Rank: 0, Op: 1, Tag: -1, Bit: 52, Sticky: true},
	}}
	w.SetFaultInjector(sched)
	err := w.Run(func(r *Rank) {
		if r.ID() == 0 {
			r.Send(1, 3, []float64{10, 20, 30})
		} else {
			r.Recv(0, 3)
		}
	})
	if !errors.Is(err, ErrCorruption) {
		t.Fatalf("err = %v, want ErrCorruption in chain", err)
	}
	var ce *CorruptionError
	if !errors.As(err, &ce) {
		t.Fatalf("err chain lacks *CorruptionError: %v", err)
	}
	if ce.Rank != 1 || ce.Src != 0 || ce.Tag != 3 {
		t.Errorf("CorruptionError = %+v, want rank 1 detecting src 0 tag 3", ce)
	}
	if d, rec := w.ChecksumStats(); d != 1 || rec != 0 {
		t.Fatalf("detected=%d recovered=%d, want 1/0", d, rec)
	}
}

// TestChecksumOffFlipIsSilent: the negative control — with checksums off
// the same flip sails through and delivers a finite wrong value.
func TestChecksumOffFlipIsSilent(t *testing.T) {
	w := NewWorld(2)
	sched := &Schedule{Rules: []Rule{
		{Action: ActFlip, Rank: 0, Op: 1, Tag: -1, Bit: 52},
	}}
	w.SetFaultInjector(sched)
	var got float64
	err := w.Run(func(r *Rank) {
		if r.ID() == 0 {
			r.Send(1, 3, []float64{10})
		} else {
			got = r.Recv(0, 3)[0]
		}
	})
	if err != nil {
		t.Fatalf("unchecked run failed: %v", err)
	}
	if got == 10 || math.IsNaN(got) || math.IsInf(got, 0) {
		t.Fatalf("flipped value = %v, want finite and wrong (bit 52 of 10 -> 20)", got)
	}
	if got != FlipBits(10, 52) {
		t.Fatalf("flipped value = %v, want %v", got, FlipBits(10, 52))
	}
}

// TestAllreduceFlipDetected: a flip at a collective corrupts the staged
// reduction contribution after its CRC, so every reading rank detects it
// and the run fails with CorruptionError (Tag -1: a collective).
func TestAllreduceFlipDetected(t *testing.T) {
	w := NewWorld(4)
	w.SetChecksums(true)
	sched := &Schedule{Rules: []Rule{
		{Action: ActFlip, Rank: 2, Op: 1, Tag: -1, Bit: 52},
	}}
	w.SetFaultInjector(sched)
	err := w.Run(func(r *Rank) {
		r.AllreduceSum(float64(r.ID() + 1))
	})
	if !errors.Is(err, ErrCorruption) {
		t.Fatalf("err = %v, want ErrCorruption", err)
	}
	var ce *CorruptionError
	if !errors.As(err, &ce) || ce.Src != 2 || ce.Tag != -1 {
		t.Fatalf("CorruptionError = %+v, want src 2 tag -1", ce)
	}
	if d, _ := w.ChecksumStats(); d == 0 {
		t.Fatal("no detections recorded")
	}
}

// TestAllreduceFlipSilentWithoutChecks: the collective negative control —
// without checksums the flipped contribution folds into the sum on every
// rank, producing an identical, finite, wrong result.
func TestAllreduceFlipSilentWithoutChecks(t *testing.T) {
	w := NewWorld(4)
	sched := &Schedule{Rules: []Rule{
		{Action: ActFlip, Rank: 2, Op: 1, Tag: -1, Bit: 52},
	}}
	w.SetFaultInjector(sched)
	sums := make([]float64, 4)
	err := w.Run(func(r *Rank) {
		sums[r.ID()] = r.AllreduceSum(float64(r.ID() + 1))
	})
	if err != nil {
		t.Fatalf("unchecked run failed: %v", err)
	}
	// 1+2+3+4 = 10 fault-free; rank 2's contribution 3 doubles to 6 -> 13.
	for i, s := range sums {
		if s != 13 {
			t.Fatalf("rank %d sum = %v, want 13 (silently wrong but deterministic)", i, s)
		}
	}
}

// TestRunCtxCancel: cancelling the context aborts the world promptly —
// ranks blocked in a barrier fail with the cancellation cause instead of
// hanging — and no rank goroutines are leaked.
func TestRunCtxCancel(t *testing.T) {
	before := runtime.NumGoroutine()
	w := NewWorld(3)
	ctx, cancel := context.WithCancelCause(context.Background())
	sentinel := errors.New("caller gave up")
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel(sentinel)
	}()
	start := time.Now()
	err := w.RunCtx(ctx, func(r *Rank) {
		if r.ID() == 0 {
			// Rank 0 never reaches the barrier: its peers block there until
			// the cancellation wakes them.
			<-ctx.Done()
			return
		}
		r.Barrier()
	})
	if err == nil {
		t.Fatal("cancelled run returned nil error")
	}
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want the cancellation cause in the chain", err)
	}
	if el := time.Since(start); el > 2*time.Second {
		t.Fatalf("cancellation took %v, want prompt return", el)
	}
	// Give the rank goroutines a moment to unwind, then check for leaks.
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > before {
		t.Fatalf("goroutines leaked: %d before, %d after", before, n)
	}
}

// TestRunCtxDeadlineTightensWatchdog: a context deadline installs (or
// tightens) the collective watchdog, so a stalled rank surfaces as
// ErrCollectiveTimeout or the cancellation cause instead of a hang — and
// the previous timeout is restored afterwards.
func TestRunCtxDeadlineTightensWatchdog(t *testing.T) {
	w := NewWorld(2)
	w.SetCollectiveTimeout(time.Hour)
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	err := w.RunCtx(ctx, func(r *Rank) {
		if r.ID() == 0 {
			return // never sends: rank 1 blocks in Recv
		}
		r.Recv(0, 1)
	})
	if err == nil {
		t.Fatal("deadline-bounded run returned nil error")
	}
	if !errors.Is(err, ErrCollectiveTimeout) && !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want collective timeout or deadline exceeded", err)
	}
	if el := time.Since(start); el > 5*time.Second {
		t.Fatalf("deadline enforcement took %v", el)
	}
	if w.timeout != time.Hour {
		t.Fatalf("collective timeout not restored: %v", w.timeout)
	}
}

// TestRunCtxNilAndBackground: a nil or plain background context adds no
// watchdog and changes nothing about a clean run.
func TestRunCtxNilAndBackground(t *testing.T) {
	for _, ctx := range []context.Context{nil, context.Background()} {
		w := NewWorld(2)
		err := w.RunCtx(ctx, func(r *Rank) {
			if got := r.AllreduceSum(1); got != 2 {
				t.Errorf("sum = %v, want 2", got)
			}
		})
		if err != nil {
			t.Fatalf("clean RunCtx failed: %v", err)
		}
	}
}

// TestFlipBits pins the bit-flip model: bit 52 doubles small-exponent
// values, bit 63 flips the sign, and a double flip restores the original.
func TestFlipBits(t *testing.T) {
	if got := FlipBits(10, 52); got != 20 {
		t.Errorf("FlipBits(10, 52) = %v, want 20", got)
	}
	if got := FlipBits(1.5, 63); got != -1.5 {
		t.Errorf("FlipBits(1.5, 63) = %v, want -1.5", got)
	}
	if got := FlipBits(FlipBits(3.25, 17), 17); got != 3.25 {
		t.Errorf("double flip = %v, want 3.25", got)
	}
}

// TestParseSpecFlip covers the flip grammar: defaults, every key, and the
// rejections for out-of-range values and flip-only keys on other actions.
func TestParseSpecFlip(t *testing.T) {
	s, err := ParseSpec("flip:rank=1,op=30,bit=12,idx=5,sticky=1")
	if err != nil {
		t.Fatal(err)
	}
	r := s.Rules[0]
	if r.Action != ActFlip || r.Rank != 1 || r.Op != 30 || r.Bit != 12 || r.Idx != 5 || !r.Sticky {
		t.Fatalf("parsed rule = %+v", r)
	}

	s, err = ParseSpec("flip:op=7")
	if err != nil {
		t.Fatal(err)
	}
	if s.Rules[0].Bit != DefaultFlipBit || s.Rules[0].Idx != 0 || s.Rules[0].Sticky {
		t.Fatalf("defaults wrong: %+v", s.Rules[0])
	}

	for _, bad := range []string{
		"flip:op=1,bit=64",
		"flip:op=1,bit=-1",
		"flip:op=1,idx=-2",
		"flip:op=1,sticky=maybe",
		"drop:op=1,bit=5",
		"kill:op=1,sticky=1",
	} {
		if _, err := ParseSpec(bad); err == nil {
			t.Errorf("ParseSpec(%q) accepted, want error", bad)
		}
	}
}

// TestSpecRoundTrip pins the canonical serialisation: parsing Spec() output
// reproduces the same rules, seed and Spec() string.
func TestSpecRoundTrip(t *testing.T) {
	for _, in := range []string{
		"kill:rank=1,op=40",
		"flip:rank=1,op=30,bit=12",
		"flip:op=7,idx=3,sticky=1",
		"corrupt:rank=0,op=25;drop:prob=0.01,seed=7",
		"flip:op=2;stall:rank=2,op=9",
	} {
		s1, err := ParseSpec(in)
		if err != nil {
			t.Fatalf("ParseSpec(%q): %v", in, err)
		}
		spec := s1.Spec()
		s2, err := ParseSpec(spec)
		if err != nil {
			t.Fatalf("ParseSpec(Spec()=%q): %v", spec, err)
		}
		if s2.Spec() != spec {
			t.Errorf("round trip diverged: %q -> %q -> %q", in, spec, s2.Spec())
		}
	}
}
