package comm

import (
	"fmt"
	"os"
	"path/filepath"
	"time"
)

// This file rebuilds the collectives from point-to-point messages for
// distributed worlds, where no shared reduction scratch exists. The
// combination is gather-to-root, combine in ascending rank order (the exact
// loop the in-process Allreduce runs), then release — so a reduction is
// bitwise identical whether the world lives in one process or spans many.
//
// One behavioural difference is deliberate: a distributed collective counts
// as ONE communication operation on every rank, where the in-process
// implementations count their internal barriers (two ops per allreduce).
// Fault schedules addressed by op number therefore fire at different points
// on the two transports; schedules meant for a fleet should be written
// against the distributed op sequence.

// Reserved tags of the internal collective messages. User tags must be
// non-negative; every existing port satisfies this.
const (
	tagGather  = -2
	tagRelease = -3
	tagBcast   = -4
)

// sendScalar ships one float64 to dst on an internal tag: no op counting, no
// fault-injector consultation (wire faults act at the frame layer), no
// retransmission backup (there is no shared memory to carry one through).
func (r *Rank) sendScalar(dst, tag int, v float64, crc uint32) {
	w := r.world
	buf := w.getBuf(1)
	buf[0] = v
	msg := message{src: r.id, tag: tag, data: buf}
	if w.checks {
		msg.crc = crc
		msg.summed = true
	}
	w.deliver(dst, msg)
}

// recvScalar receives one internal scalar from src, returning the value and
// the CRC it travelled with. The payload buffer is recycled immediately.
func (r *Rank) recvScalar(src, tag int) (float64, uint32) {
	w := r.world
	msg := w.boxes[r.id].get(w, r.id, src, tag)
	v := msg.data[0]
	crc := msg.crc
	w.putBuf(msg.data)
	return v, crc
}

// checkScalar verifies an internal scalar against the CRC it was sent with.
// Tag -1 marks the corruption as collective-level, matching the in-process
// convention.
func (r *Rank) checkScalar(v float64, crc uint32, src int) {
	w := r.world
	if !w.checks {
		return
	}
	if got := crcFloat(v); got != crc {
		w.detected.Add(1)
		panic(&CorruptionError{Rank: r.id, Src: src, Tag: -1, Op: r.ops, Want: crc, Got: got})
	}
}

// collectiveEntry counts the operation and consults the fault injector,
// returning whether a flip verdict fired. Kill/stall/delay actions apply
// inside inject as usual.
func (r *Rank) collectiveEntry() bool {
	r.ops++
	if fi := r.world.injector; fi != nil {
		_, _, flip := r.inject(fi.OnCollective(r.id, r.ops))
		return flip
	}
	return false
}

// distBarrier is Barrier for distributed worlds: gather-to-root then
// release, carrying token scalars. A flip verdict arms (nothing is staged at
// a barrier) and discharges at the next reduction, like the in-process path.
func (r *Rank) distBarrier() {
	w := r.world
	if r.collectiveEntry() {
		r.armFlip = true
	}
	token := 0.0
	crc := uint32(0)
	if w.checks {
		crc = crcFloat(token)
	}
	if r.id == 0 {
		for i := 1; i < w.size; i++ {
			v, c := r.recvScalar(i, tagGather)
			r.checkScalar(v, c, i)
		}
		for i := 1; i < w.size; i++ {
			r.sendScalar(i, tagRelease, token, crc)
		}
		return
	}
	r.sendScalar(0, tagGather, token, crc)
	v, c := r.recvScalar(0, tagRelease)
	r.checkScalar(v, c, 0)
}

// distAllreduce is Allreduce for distributed worlds. Rank 0 gathers every
// contribution into the world's reduction scratch and combines in ascending
// rank order — the identical loop, and therefore the identical bits, as the
// in-process implementation — then releases the result to every rank. With
// checksums on, rank 0 verifies every contribution (including its own, so an
// injected flip is detected exactly as in-process) and every rank verifies
// the released result.
func (r *Rank) distAllreduce(x float64, op Op) float64 {
	w := r.world
	if r.collectiveEntry() {
		r.armFlip = true
	}
	crc := uint32(0)
	if w.checks {
		crc = crcFloat(x)
	}
	if r.armFlip {
		// Discharge after the CRC is computed: the checksum attests to the
		// true contribution, so the corruption is detectable downstream.
		r.armFlip = false
		x = FlipBits(x, r.flipShape().Bit)
	}
	if r.id != 0 {
		r.sendScalar(0, tagGather, x, crc)
		v, c := r.recvScalar(0, tagRelease)
		r.checkScalar(v, c, 0)
		return v
	}
	// Rank 0: gather, verify, combine, release. Only rank 0 touches the
	// scratch in a distributed world, so no locking is needed even when all
	// ranks share this process (a loopback world).
	w.redBuf[0] = x
	w.redCRC[0] = crc
	for i := 1; i < w.size; i++ {
		v, c := r.recvScalar(i, tagGather)
		w.redBuf[i] = v
		w.redCRC[i] = c
	}
	var acc float64
	for i := 0; i < w.size; i++ {
		v := w.redBuf[i]
		r.checkScalar(v, w.redCRC[i], i)
		if i == 0 {
			acc = v
			continue
		}
		switch op {
		case OpSum:
			acc += v
		case OpMin:
			if v < acc {
				acc = v
			}
		case OpMax:
			if v > acc {
				acc = v
			}
		}
	}
	accCRC := uint32(0)
	if w.checks {
		accCRC = crcFloat(acc)
	}
	for i := 1; i < w.size; i++ {
		r.sendScalar(i, tagRelease, acc, accCRC)
	}
	return acc
}

// distBcast is Bcast for distributed worlds: the root ships its value to
// every peer. The root self-verifies after sending, so a flip injected at
// the root is detected by the root as well as by every receiver — matching
// the in-process all-ranks-detect semantics.
func (r *Rank) distBcast(x float64, root int) float64 {
	w := r.world
	if r.collectiveEntry() {
		r.armFlip = true
	}
	if r.id != root {
		v, c := r.recvScalar(root, tagBcast)
		r.checkScalar(v, c, root)
		return v
	}
	crc := uint32(0)
	if w.checks {
		crc = crcFloat(x)
	}
	if r.armFlip {
		r.armFlip = false
		x = FlipBits(x, r.flipShape().Bit)
	}
	for i := 0; i < w.size; i++ {
		if i != root {
			r.sendScalar(i, tagBcast, x, crc)
		}
	}
	r.checkScalar(x, crc, root)
	return x
}

// SocketOptions configures a socket-transport world.
type SocketOptions struct {
	// Network is "unix" (the default) or "tcp".
	Network string
	// Addrs holds one listen address per rank. NewSocketWorld fills it with
	// Unix sockets in a fresh temporary directory when nil; JoinWorld
	// requires it (every member must agree on the full address table).
	Addrs []string
	// HeartbeatInterval is the idle-keepalive period per link (default
	// 100ms). Negative disables heartbeats and liveness monitoring.
	HeartbeatInterval time.Duration
	// HeartbeatTimeout is how long a peer may stay silent before it is
	// declared lost (default 20× the interval).
	HeartbeatTimeout time.Duration
	// DialTimeout bounds the total time spent (re)dialling one peer,
	// retries and backoff included, before the peer is declared lost
	// (default 10s).
	DialTimeout time.Duration
	// Injector, when set, perturbs individual wire frames (partitions,
	// slow links). A *Schedule satisfies this alongside FaultInjector.
	Injector FrameInjector
}

func (o *SocketOptions) network() string {
	if o.Network == "" {
		return "unix"
	}
	return o.Network
}

func (o *SocketOptions) heartbeatInterval() time.Duration {
	if o.HeartbeatInterval == 0 {
		return 100 * time.Millisecond
	}
	return o.HeartbeatInterval
}

func (o *SocketOptions) heartbeatTimeout() time.Duration {
	if o.HeartbeatTimeout > 0 {
		return o.HeartbeatTimeout
	}
	return 20 * o.heartbeatInterval()
}

func (o *SocketOptions) dialTimeout() time.Duration {
	if o.DialTimeout > 0 {
		return o.DialTimeout
	}
	return 10 * time.Second
}

// NewSocketWorld creates a world whose ranks all live in this process but
// exchange every payload over real sockets — the loopback configuration the
// conformance and chaos tests use to exercise the full wire path (framing,
// CRC trailers, acks, reconnects) without spawning processes. With no
// explicit Addrs, Unix sockets are created in a fresh temporary directory
// and removed on Close.
func NewSocketWorld(size int, opt SocketOptions) (*World, error) {
	cleanup := func() {}
	if opt.Addrs == nil {
		if opt.network() != "unix" {
			return nil, fmt.Errorf("comm: NewSocketWorld: Addrs required for network %q", opt.Network)
		}
		// Keep paths short: Unix socket paths are limited to ~108 bytes.
		dir, err := os.MkdirTemp("", "tlw")
		if err != nil {
			return nil, fmt.Errorf("comm: NewSocketWorld: %w", err)
		}
		cleanup = func() { os.RemoveAll(dir) }
		opt.Addrs = make([]string, size)
		for i := range opt.Addrs {
			opt.Addrs[i] = filepath.Join(dir, fmt.Sprintf("r%d.sock", i))
		}
	}
	if len(opt.Addrs) != size {
		cleanup()
		return nil, fmt.Errorf("comm: NewSocketWorld: %d addrs for %d ranks", len(opt.Addrs), size)
	}
	w := NewWorld(size)
	w.dist = true
	st, err := newSocketTransport(w, opt, cleanup)
	if err != nil {
		cleanup()
		return nil, err
	}
	w.tr = st
	return w, nil
}

// JoinWorld creates this process's membership in a world of the given size
// that spans OS processes: the returned World hosts exactly one rank, and
// Run(fn) executes fn once, as that rank. Every member must be constructed
// with the same size and address table. The world is single-use: after Run
// returns, Close it; it cannot be Reset and reused the way an in-process
// world can, because peer processes share no abort latch.
func JoinWorld(rank, size int, opt SocketOptions) (*World, error) {
	if rank < 0 || rank >= size {
		return nil, fmt.Errorf("comm: JoinWorld: rank %d outside world of size %d", rank, size)
	}
	if len(opt.Addrs) != size {
		return nil, fmt.Errorf("comm: JoinWorld: %d addrs for %d ranks", len(opt.Addrs), size)
	}
	w := NewWorld(size)
	w.dist = true
	w.local = []int{rank}
	st, err := newSocketTransport(w, opt, func() {})
	if err != nil {
		return nil, err
	}
	w.tr = st
	return w, nil
}
