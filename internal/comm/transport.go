package comm

// This file defines the pluggable transport seam of the runtime: every
// point-to-point payload a Rank sends is routed through the World's
// Transport, so the same SPMD program runs unchanged over in-process
// channels (chanTransport, the NewWorld default) or over real sockets
// between OS processes (socketTransport, via NewSocketWorld / JoinWorld).
// Collectives stay transport-agnostic too: in a single-process world they
// use the shared-scratch rank-ordered combine in comm.go; in a distributed
// world they are rebuilt from point-to-point messages (dist.go) with the
// same ascending-rank combination order, so reductions stay bitwise
// identical across transports.

// Transport delivers point-to-point messages between ranks. Implementations
// live in this package (the interface's method signatures use the internal
// message type on purpose: a transport is a routing fabric for the runtime,
// not a public codec). All methods must be safe for concurrent use by every
// local rank.
type Transport interface {
	// Deliver enqueues msg for rank dst. In-process delivery cannot fail;
	// a socket transport fails once it is closed or the world is torn down.
	// Payload buffer ownership passes to the transport: in-process, the
	// receiver recycles it; over a socket, the sender's transport releases
	// it back to the pool once the peer acknowledges the frame.
	Deliver(dst int, msg message) error
	// Close releases the transport's resources (listeners, connections,
	// background goroutines). Idempotent.
	Close() error
	// Stats snapshots the transport's wire counters; all-zero for the
	// in-process transport.
	Stats() TransportStats
}

// TransportStats are the cumulative wire counters of a transport, the raw
// material for the fleet/transport metrics (reconnects, heartbeat misses,
// bytes on wire) the serving layer publishes.
type TransportStats struct {
	FramesSent      uint64 // data+control frames written to the wire
	FramesRecv      uint64 // frames read and CRC-validated off the wire
	BytesSent       uint64
	BytesRecv       uint64
	Dials           uint64 // successful connection establishments
	Reconnects      uint64 // successful dials after the first, per link
	Retransmits     uint64 // data frames replayed from the retain buffer
	DupsDropped     uint64 // replayed frames the receiver had already seen
	FrameCRCErrors  uint64 // frames rejected by the wire CRC-32C trailer
	HeartbeatMisses uint64 // liveness-window expiries observed by the monitor
}

// Add accumulates other into s, for aggregating per-worker stats.
func (s *TransportStats) Add(o TransportStats) {
	s.FramesSent += o.FramesSent
	s.FramesRecv += o.FramesRecv
	s.BytesSent += o.BytesSent
	s.BytesRecv += o.BytesRecv
	s.Dials += o.Dials
	s.Reconnects += o.Reconnects
	s.Retransmits += o.Retransmits
	s.DupsDropped += o.DupsDropped
	s.FrameCRCErrors += o.FrameCRCErrors
	s.HeartbeatMisses += o.HeartbeatMisses
}

// chanTransport is the in-process transport: delivery is a mailbox append.
// It is the NewWorld default and preserves the pre-transport behaviour (and
// allocation profile) of the runtime exactly.
type chanTransport struct{ w *World }

// Deliver implements Transport.
func (t chanTransport) Deliver(dst int, msg message) error {
	t.w.boxes[dst].put(msg)
	return nil
}

// Close implements Transport.
func (t chanTransport) Close() error { return nil }

// Stats implements Transport.
func (t chanTransport) Stats() TransportStats { return TransportStats{} }

// deliver routes one message through the world's transport. A delivery
// failure (only possible on remote transports: transport closed, world
// aborted) panics on the sending rank, surfacing through Run's recovery as
// a RankError exactly like any other comm failure.
func (w *World) deliver(dst int, msg message) {
	if err := w.tr.Deliver(dst, msg); err != nil {
		panic(err)
	}
}

// WireStats returns the transport's cumulative wire counters (all zero for
// an in-process world).
func (w *World) WireStats() TransportStats { return w.tr.Stats() }

// Close releases the world's transport (listeners, connections, heartbeat
// goroutines). In-process worlds need no Close; socket worlds should be
// closed once Run returns. Idempotent.
func (w *World) Close() error { return w.tr.Close() }

// EnableProcessExit makes fault-injected process kills (ActKillProc) call
// os.Exit instead of panicking the rank. Worker processes in a fleet enable
// it so a killproc fault is a genuine process death their supervisor must
// detect; in-process worlds leave it off so tests do not kill the test
// binary.
func (w *World) EnableProcessExit() { w.procExit = true }
