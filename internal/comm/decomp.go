package comm

import "fmt"

// CartGrid is a 2D Cartesian process grid of PX-by-PY ranks. Rank r sits at
// coordinates (r mod PX, r / PX): x-major, like TeaLeaf's chunk numbering.
type CartGrid struct {
	PX, PY int
}

// Decompose chooses the process-grid shape for nprocs ranks over an
// nx-by-ny cell mesh, following the mini-app's tea_decompose: among all
// factorisations px*py = nprocs it picks the one whose px/py ratio best
// matches the mesh ratio nx/ny, which minimises the halo surface exchanged.
func Decompose(nprocs, nx, ny int) CartGrid {
	if nprocs <= 0 {
		panic(fmt.Sprintf("comm: cannot decompose over %d ranks", nprocs))
	}
	meshRatio := float64(nx) / float64(ny)
	best := CartGrid{PX: nprocs, PY: 1}
	bestErr := ratioErr(best, meshRatio)
	for px := 1; px <= nprocs; px++ {
		if nprocs%px != 0 {
			continue
		}
		g := CartGrid{PX: px, PY: nprocs / px}
		if e := ratioErr(g, meshRatio); e < bestErr {
			best, bestErr = g, e
		}
	}
	return best
}

func ratioErr(g CartGrid, meshRatio float64) float64 {
	r := float64(g.PX) / float64(g.PY)
	e := r - meshRatio
	if e < 0 {
		e = -e
	}
	return e
}

// Size returns the number of ranks in the grid.
func (g CartGrid) Size() int { return g.PX * g.PY }

// Coords returns the (cx, cy) grid coordinates of a rank.
func (g CartGrid) Coords(rank int) (cx, cy int) { return rank % g.PX, rank / g.PX }

// RankAt returns the rank at grid coordinates (cx, cy), or -1 if the
// coordinates fall outside the grid (i.e. the neighbour is a physical
// boundary).
func (g CartGrid) RankAt(cx, cy int) int {
	if cx < 0 || cx >= g.PX || cy < 0 || cy >= g.PY {
		return -1
	}
	return cy*g.PX + cx
}

// Chunk is the sub-domain a rank owns: its cell offset and extent within
// the global mesh and its four neighbour ranks (-1 at physical boundaries).
type Chunk struct {
	X0, Y0 int // global cell offset of the chunk's first interior cell
	NX, NY int // interior extent of the chunk
	Left   int
	Right  int
	Down   int
	Up     int
}

// ChunkOf computes the sub-domain of one rank for a global nx-by-ny mesh.
// Cells divide as evenly as possible; the first nx mod PX columns of chunks
// get one extra column (and likewise in y), matching tea_decompose.
func (g CartGrid) ChunkOf(rank, nx, ny int) Chunk {
	cx, cy := g.Coords(rank)
	x0, cnx := splitRange(nx, g.PX, cx)
	y0, cny := splitRange(ny, g.PY, cy)
	return Chunk{
		X0: x0, Y0: y0, NX: cnx, NY: cny,
		Left:  g.RankAt(cx-1, cy),
		Right: g.RankAt(cx+1, cy),
		Down:  g.RankAt(cx, cy-1),
		Up:    g.RankAt(cx, cy+1),
	}
}

// splitRange divides n cells across p parts and returns part i's offset and
// length.
func splitRange(n, p, i int) (off, length int) {
	base := n / p
	rem := n % p
	off = i*base + min(i, rem)
	length = base
	if i < rem {
		length++
	}
	return off, length
}
