package comm

import (
	"errors"
	"fmt"
	"math"
	"net"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// runMeshProgram runs a small but comm-dense SPMD program — ring halo
// exchanges, allreduces of all three ops, broadcasts — and returns each
// rank's final scalar. Identical across transports by construction; the
// socket conformance tests pin that.
func runMeshProgram(w *World, steps int) ([]float64, error) {
	out := make([]float64, w.Size())
	var mu sync.Mutex
	err := w.Run(func(r *Rank) {
		n := r.Size()
		x := float64(r.ID()*r.ID()) + 0.25
		buf := make([]float64, 8)
		for s := 0; s < steps; s++ {
			right := (r.ID() + 1) % n
			left := (r.ID() + n - 1) % n
			for i := range buf {
				buf[i] = x + float64(i)*1e-3
			}
			r.Send(right, 7, buf)
			got := r.Recv(left, 7)
			x = 0.5*x + 0.25*got[0] + 0.125*got[len(got)-1]
			r.world.putBuf(got)
			sum := r.AllreduceSum(x)
			lo := r.Allreduce(x, OpMin)
			hi := r.Allreduce(x, OpMax)
			x = x + 1e-3*sum - 1e-4*(hi-lo)
			x = r.Bcast(x, s%n)*1e-6 + x
			r.Barrier()
		}
		mu.Lock()
		out[r.ID()] = x
		mu.Unlock()
	})
	return out, err
}

// TestSocketWorldMatchesInProcess pins the tentpole determinism contract:
// the same program on an in-process world and on a loopback socket world
// produces bitwise-identical results on every rank.
func TestSocketWorldMatchesInProcess(t *testing.T) {
	const size, steps = 4, 25
	ref, err := runMeshProgram(NewWorld(size), steps)
	if err != nil {
		t.Fatalf("in-process run: %v", err)
	}
	sw, err := NewSocketWorld(size, SocketOptions{})
	if err != nil {
		t.Fatalf("NewSocketWorld: %v", err)
	}
	defer sw.Close()
	got, err := runMeshProgram(sw, steps)
	if err != nil {
		t.Fatalf("socket run: %v", err)
	}
	for i := range ref {
		if ref[i] != got[i] {
			t.Errorf("rank %d: socket %v != in-process %v (diff %g)", i, got[i], ref[i], got[i]-ref[i])
		}
	}
	st := sw.WireStats()
	if st.FramesSent == 0 || st.FramesRecv == 0 || st.BytesSent == 0 {
		t.Errorf("wire stats not counting: %+v", st)
	}
}

// TestSocketWorldChecksums runs the same program with payload checksums on:
// every frame then carries an application CRC end to end.
func TestSocketWorldChecksums(t *testing.T) {
	const size, steps = 3, 10
	ref := NewWorld(size)
	ref.SetChecksums(true)
	want, err := runMeshProgram(ref, steps)
	if err != nil {
		t.Fatalf("in-process run: %v", err)
	}
	sw, err := NewSocketWorld(size, SocketOptions{})
	if err != nil {
		t.Fatalf("NewSocketWorld: %v", err)
	}
	defer sw.Close()
	sw.SetChecksums(true)
	got, err := runMeshProgram(sw, steps)
	if err != nil {
		t.Fatalf("socket run: %v", err)
	}
	for i := range want {
		if want[i] != got[i] {
			t.Errorf("rank %d: %v != %v", i, got[i], want[i])
		}
	}
}

// TestSocketWorldTCP exercises the TCP network option on loopback.
func TestSocketWorldTCP(t *testing.T) {
	const size = 2
	// A coordinator would assign real ports; emulate by reserving free
	// loopback ports up front.
	addrs := make([]string, size)
	for i := range addrs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatalf("reserve port: %v", err)
		}
		addrs[i] = ln.Addr().String()
		ln.Close()
	}
	sw, err := NewSocketWorld(size, SocketOptions{Network: "tcp", Addrs: addrs})
	if err != nil {
		t.Fatalf("NewSocketWorld tcp: %v", err)
	}
	defer sw.Close()
	if _, err := runMeshProgram(sw, 5); err != nil {
		t.Fatalf("tcp run: %v", err)
	}
}

// TestSocketWorldPartitionRecovers injects a transient partition around rank
// 1 via the fault grammar and checks the run still completes with the exact
// fault-free answer. The grammar's partition window opens at the first
// matching frame — effectively a startup outage — so this pins the
// dial-retry/backoff masking; mid-run connection drops are exercised by
// TestSocketWorldReconnectReplay below.
func TestSocketWorldPartitionRecovers(t *testing.T) {
	const size, steps = 3, 30
	want, err := runMeshProgram(NewWorld(size), steps)
	if err != nil {
		t.Fatalf("reference run: %v", err)
	}
	sched, err := ParseSpec("partition:rank=1,dur=300ms")
	if err != nil {
		t.Fatalf("ParseSpec: %v", err)
	}
	sw, err := NewSocketWorld(size, SocketOptions{
		Injector:    sched,
		DialTimeout: 20 * time.Second, // outlive the partition comfortably
	})
	if err != nil {
		t.Fatalf("NewSocketWorld: %v", err)
	}
	defer sw.Close()
	got, err := runMeshProgram(sw, steps)
	if err != nil {
		t.Fatalf("partitioned run failed (should have been masked): %v", err)
	}
	for i := range want {
		if want[i] != got[i] {
			t.Errorf("rank %d: %v != %v after partition", i, got[i], want[i])
		}
	}
}

// cutAfter is a test injector that severs every link touching rank for dur,
// starting once `after` matching frames have flowed — i.e. well after the
// connections are established, unlike the grammar's startup-window
// partition. It forces established connections to drop with unacknowledged
// frames in flight, exercising reconnect, retained-frame replay and
// receiver-side deduplication.
type cutAfter struct {
	rank  int
	after int64
	dur   time.Duration
	seen  atomic.Int64
	until atomic.Int64 // unix nanos; 0 = window not yet opened
}

func (c *cutAfter) OnFrame(src, dst int) FrameVerdict {
	if src != c.rank && dst != c.rank {
		return FrameVerdict{}
	}
	if c.seen.Add(1) < c.after {
		return FrameVerdict{}
	}
	if c.until.Load() == 0 {
		c.until.CompareAndSwap(0, time.Now().Add(c.dur).UnixNano())
	}
	if time.Now().UnixNano() < c.until.Load() {
		return FrameVerdict{Cut: true}
	}
	return FrameVerdict{}
}

// TestSocketWorldReconnectReplay drops rank 1's established connections
// mid-run and checks the run completes bitwise-correct, with the transport
// reporting actual reconnections.
func TestSocketWorldReconnectReplay(t *testing.T) {
	const size, steps = 3, 60
	want, err := runMeshProgram(NewWorld(size), steps)
	if err != nil {
		t.Fatalf("reference run: %v", err)
	}
	inj := &cutAfter{rank: 1, after: 150, dur: 250 * time.Millisecond}
	sw, err := NewSocketWorld(size, SocketOptions{
		Injector:    inj,
		DialTimeout: 20 * time.Second,
	})
	if err != nil {
		t.Fatalf("NewSocketWorld: %v", err)
	}
	defer sw.Close()
	got, err := runMeshProgram(sw, steps)
	if err != nil {
		t.Fatalf("run with mid-flight cut failed: %v", err)
	}
	for i := range want {
		if want[i] != got[i] {
			t.Errorf("rank %d: %v != %v after reconnect", i, got[i], want[i])
		}
	}
	st := sw.WireStats()
	if st.Reconnects == 0 {
		t.Errorf("expected reconnects after mid-run cut, stats %+v", st)
	}
	t.Logf("wire stats after cut: %+v", st)
}

// TestSocketWorldSlowlink checks a lossy-slow link perturbs nothing but
// timing.
func TestSocketWorldSlowlink(t *testing.T) {
	const size, steps = 3, 10
	want, err := runMeshProgram(NewWorld(size), steps)
	if err != nil {
		t.Fatalf("reference run: %v", err)
	}
	sched, err := ParseSpec("slowlink:prob=0.2,delay=1ms")
	if err != nil {
		t.Fatalf("ParseSpec: %v", err)
	}
	sw, err := NewSocketWorld(size, SocketOptions{Injector: sched})
	if err != nil {
		t.Fatalf("NewSocketWorld: %v", err)
	}
	defer sw.Close()
	got, err := runMeshProgram(sw, steps)
	if err != nil {
		t.Fatalf("slowlink run: %v", err)
	}
	for i := range want {
		if want[i] != got[i] {
			t.Errorf("rank %d: %v != %v under slowlink", i, got[i], want[i])
		}
	}
}

// TestJoinWorldHeartbeatDetectsDeath builds a 2-rank world from two
// JoinWorld memberships (the cross-process topology, here sharing one test
// process) and kills one member's transport mid-run: the survivor's
// heartbeat monitor must declare the peer lost with the typed error.
func TestJoinWorldHeartbeatDetectsDeath(t *testing.T) {
	dir, err := os.MkdirTemp("", "tlw")
	if err != nil {
		t.Fatal(err)
	}
	defer os.RemoveAll(dir)
	addrs := []string{filepath.Join(dir, "r0.sock"), filepath.Join(dir, "r1.sock")}
	opt := SocketOptions{
		Addrs:             addrs,
		HeartbeatInterval: 10 * time.Millisecond,
		HeartbeatTimeout:  150 * time.Millisecond,
		DialTimeout:       5 * time.Second,
	}
	w0, err := JoinWorld(0, 2, opt)
	if err != nil {
		t.Fatalf("JoinWorld 0: %v", err)
	}
	defer w0.Close()
	w1, err := JoinWorld(1, 2, opt)
	if err != nil {
		t.Fatalf("JoinWorld 1: %v", err)
	}

	var wg sync.WaitGroup
	var err0, err1 error
	wg.Add(2)
	go func() {
		defer wg.Done()
		err0 = w0.Run(func(r *Rank) {
			r.Send(1, 1, []float64{3.5})
			if got := r.Recv(1, 2); got[0] != 4.5 {
				panic(fmt.Sprintf("got %v", got[0]))
			}
			// Wait for a reply that will never come: rank 1's process dies.
			r.Recv(1, 3)
		})
	}()
	go func() {
		defer wg.Done()
		err1 = w1.Run(func(r *Rank) {
			if got := r.Recv(0, 1); got[0] != 3.5 {
				panic(fmt.Sprintf("got %v", got[0]))
			}
			r.Send(0, 2, []float64{4.5})
			// Let the reply and a few heartbeats reach rank 0, so both sides
			// have live, established connections before the death.
			time.Sleep(100 * time.Millisecond)
			// Simulate sudden process death: tear the transport down without
			// any goodbye.
			w1.Close()
			panic(ErrKilled)
		})
	}()
	wg.Wait()
	if err1 == nil {
		t.Fatalf("rank 1 should have failed")
	}
	if err0 == nil {
		t.Fatalf("rank 0 should have detected peer loss")
	}
	if !errors.Is(err0, ErrPeerLost) {
		t.Fatalf("rank 0 error should wrap ErrPeerLost, got %v", err0)
	}
	var re *RankError
	if !errors.As(err0, &re) || re.Rank != 1 {
		t.Fatalf("rank 0 error should be a RankError naming rank 1, got %v", err0)
	}
	if st := w0.WireStats(); st.HeartbeatMisses == 0 {
		t.Errorf("expected heartbeat misses on the survivor, stats %+v", st)
	}
}

// TestSocketWorldCorruptionDetected checks the SDC ladder holds over the
// wire: a sticky flip on a socket world escalates as a CorruptionError (no
// shared-memory backup exists to repair from).
func TestSocketWorldCorruptionDetected(t *testing.T) {
	sched, err := ParseSpec("flip:rank=0,op=1,tag=7")
	if err != nil {
		t.Fatalf("ParseSpec: %v", err)
	}
	sw, err := NewSocketWorld(2, SocketOptions{})
	if err != nil {
		t.Fatalf("NewSocketWorld: %v", err)
	}
	defer sw.Close()
	sw.SetChecksums(true)
	sw.SetFaultInjector(sched)
	err = sw.Run(func(r *Rank) {
		if r.ID() == 0 {
			r.Send(1, 7, []float64{1, 2, 3})
		} else {
			r.Recv(0, 7)
		}
	})
	if err == nil {
		t.Fatalf("flipped payload should escalate")
	}
	if !errors.Is(err, ErrCorruption) {
		t.Fatalf("want ErrCorruption, got %v", err)
	}
	detected, recovered := sw.ChecksumStats()
	if detected == 0 || recovered != 0 {
		t.Errorf("want detected>0 recovered=0 over the wire, got %d/%d", detected, recovered)
	}
}

// TestSocketWorldKillProcInProcess checks killproc degrades to an ActKill
// panic when process exits are not enabled, so in-process chaos tests can
// use fleet specs safely.
func TestSocketWorldKillProcInProcess(t *testing.T) {
	sched, err := ParseSpec("killproc:rank=1,step=4")
	if err != nil {
		t.Fatalf("ParseSpec: %v", err)
	}
	sw, err := NewSocketWorld(2, SocketOptions{})
	if err != nil {
		t.Fatalf("NewSocketWorld: %v", err)
	}
	defer sw.Close()
	sw.SetFaultInjector(sched)
	_, err = runMeshProgram(sw, 10)
	if err == nil {
		t.Fatalf("killproc should fail the run")
	}
	if !errors.Is(err, ErrKilled) {
		t.Fatalf("want ErrKilled, got %v", err)
	}
}

// TestDistCollectivesMatchInProcess sweeps sizes and pins distributed
// collectives (including vector reductions and min/max with negative zero
// and denormal inputs) against the shared-scratch implementations.
func TestDistCollectivesMatchInProcess(t *testing.T) {
	for _, size := range []int{1, 2, 3, 5} {
		vals := make([]float64, size)
		for i := range vals {
			vals[i] = math.Ldexp(float64(3*i-size), -i) // mixed signs/scales
		}
		type result struct{ sum, min, max, b float64 }
		run := func(w *World) []result {
			res := make([]result, size)
			var mu sync.Mutex
			if err := w.Run(func(r *Rank) {
				x := vals[r.ID()]
				var out result
				out.sum = r.AllreduceSum(x)
				out.min = r.Allreduce(x, OpMin)
				out.max = r.Allreduce(x, OpMax)
				out.b = r.Bcast(x*2, size-1)
				mu.Lock()
				res[r.ID()] = out
				mu.Unlock()
			}); err != nil {
				t.Fatalf("size %d: %v", size, err)
			}
			return res
		}
		want := run(NewWorld(size))
		sw, err := NewSocketWorld(size, SocketOptions{})
		if err != nil {
			t.Fatalf("NewSocketWorld(%d): %v", size, err)
		}
		got := run(sw)
		sw.Close()
		for i := range want {
			if want[i] != got[i] {
				t.Errorf("size %d rank %d: dist %+v != in-proc %+v", size, i, got[i], want[i])
			}
		}
	}
}

// TestParseSpecTransportFaults pins the extended fault grammar: the new
// transport-level actions, their required keys, the step alias, and the
// canonical round-trip through Spec().
func TestParseSpecTransportFaults(t *testing.T) {
	roundTrips := []string{
		"partition:rank=1,dur=2s",
		"partition:dur=1.5s",
		"slowlink:rank=2,prob=0.05,delay=5ms",
		"slowlink:prob=0.1",
		"killproc:rank=2,op=40",
		"partition:rank=0,dur=500ms;slowlink:prob=0.01,seed=9",
		"kill:rank=1,op=40;partition:rank=1,dur=2s",
	}
	for _, spec := range roundTrips {
		s, err := ParseSpec(spec)
		if err != nil {
			t.Errorf("ParseSpec(%q): %v", spec, err)
			continue
		}
		canon := s.Spec()
		s2, err := ParseSpec(canon)
		if err != nil {
			t.Errorf("ParseSpec(Spec(%q)) = ParseSpec(%q): %v", spec, canon, err)
			continue
		}
		if s2.Spec() != canon {
			t.Errorf("%q: canonical form not a fixed point: %q -> %q", spec, canon, s2.Spec())
		}
	}

	// step is an accepted alias for op and canonicalises to op.
	s, err := ParseSpec("killproc:rank=2,step=40")
	if err != nil {
		t.Fatalf("step alias: %v", err)
	}
	if s.Rules[0].Op != 40 {
		t.Errorf("step alias: Op = %d, want 40", s.Rules[0].Op)
	}
	if want := "killproc:rank=2,op=40"; s.Spec() != want {
		t.Errorf("step alias canonical form %q, want %q", s.Spec(), want)
	}

	bad := []string{
		"partition:rank=1",                 // missing dur
		"partition:rank=1,dur=0s",          // non-positive dur
		"partition:rank=1,dur=2s,op=5",     // op inapplicable
		"partition:rank=1,dur=2s,prob=0.5", // prob inapplicable
		"slowlink:rank=1",                  // missing prob
		"slowlink:prob=0.5,dur=2s",         // dur is partition-only
		"killproc:rank=2",                  // missing op
		"killproc:rank=2,prob=0.5",         // prob inapplicable
		"kill:rank=1,op=4,delay=5ms",       // delay is slowlink-only
	}
	for _, spec := range bad {
		if _, err := ParseSpec(spec); err == nil {
			t.Errorf("ParseSpec(%q) should fail", spec)
		}
	}
}

// TestFrameRulesInertOnOpPath checks partition/slowlink rules never fire on
// the operation path, so a fleet chaos spec can be reused on an in-process
// world without spurious op-level faults.
func TestFrameRulesInertOnOpPath(t *testing.T) {
	s, err := ParseSpec("partition:rank=0,dur=1s;slowlink:rank=0,prob=1")
	if err != nil {
		t.Fatal(err)
	}
	for op := 1; op < 50; op++ {
		if act := s.OnSend(0, 1, 3, op); act != ActNone {
			t.Fatalf("OnSend op %d: got %v, want ActNone", op, act)
		}
		if act := s.OnCollective(0, op); act != ActNone {
			t.Fatalf("OnCollective op %d: got %v, want ActNone", op, act)
		}
	}
	// The frame path does fire.
	if v := s.OnFrame(0, 1); !v.Cut {
		t.Errorf("OnFrame should cut during the partition window")
	}
	if v := s.OnFrame(1, 2); v.Cut || v.Delay > 0 {
		t.Errorf("OnFrame for an unmatched pair should be clean, got %+v", v)
	}
}
