// Package comm is the message-passing runtime used by the MPI-style ports:
// a fixed-size world of ranks (goroutines) exchanging typed messages through
// eager, unbounded mailboxes, with the collectives TeaLeaf needs (barrier,
// allreduce, broadcast, gather).
//
// It stands in for MPI in this study (see DESIGN.md): programs are written
// SPMD — NewWorld(n).Run(func(r *Rank) { ... }) — with explicit sends,
// receives and halo exchanges between sub-domains, so the distributed-memory
// ports retain the communication structure and costs (copies plus
// synchronisation) of their MPI originals.
//
// Concurrency and ownership: each Rank is owned by exactly one goroutine —
// the one Run spawned for it — and a Rank's methods must only be called
// from that goroutine, mirroring MPI's one-process-per-rank model. The
// World owns the mailboxes and collective state that connect ranks; message
// payloads are copied on send, so a sender may reuse its buffer immediately
// and ranks never share mutable field memory. Run returns only after every
// rank's function has returned (or a fault-injected kill has been
// collected), after which the World must not be reused.
package comm

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
	"os"
	"sync"
	"sync/atomic"
	"time"
)

// message is one point-to-point transfer. Payloads are copied on send so a
// rank may immediately reuse its buffer, matching MPI's eager protocol for
// the message sizes TeaLeaf exchanges. With checksums enabled the message
// additionally carries the CRC-32C of the payload as it left the sender's
// buffer plus a pristine retransmission copy, so a receive that detects
// wire corruption can repair it once without a protocol round-trip.
type message struct {
	src, tag int
	data     []float64
	crc      uint32    // CRC-32C of the payload at send time (summed only)
	summed   bool      // crc is valid: world had checksums on at send
	backup   []float64 // retransmission copy, pooled; nil when checksums off
}

// castagnoli is the CRC-32C polynomial table, hardware-accelerated on every
// target Go supports — the same checksum the checkpoint container uses.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// crcFloats checksums a float64 payload byte-wise (little-endian), so the
// checksum is stable across architectures and matches a value-wise replay.
func crcFloats(xs []float64) uint32 {
	var scratch [8]byte
	crc := uint32(0)
	for _, x := range xs {
		binary.LittleEndian.PutUint64(scratch[:], math.Float64bits(x))
		crc = crc32.Update(crc, castagnoli, scratch[:])
	}
	return crc
}

// crcFloat is crcFloats for a single staged reduction contribution.
func crcFloat(x float64) uint32 {
	var scratch [8]byte
	binary.LittleEndian.PutUint64(scratch[:], math.Float64bits(x))
	return crc32.Update(0, castagnoli, scratch[:])
}

// mailbox is an unbounded, order-preserving queue of incoming messages for
// one rank. Receives match on (source, tag), like MPI point-to-point
// matching with non-overtaking order per (source, tag) pair.
type mailbox struct {
	mu      sync.Mutex
	cond    *sync.Cond
	pending []message
}

func newMailbox() *mailbox {
	m := &mailbox{}
	m.cond = sync.NewCond(&m.mu)
	return m
}

func (m *mailbox) put(msg message) {
	m.mu.Lock()
	m.pending = append(m.pending, msg)
	m.mu.Unlock()
	m.cond.Broadcast()
}

// get blocks until a matching message arrives. It aborts — by panicking
// with a cause World.Run's recovery wraps into a RankError — when the world
// is torn down under it or, with a collective deadline installed, when the
// message does not arrive in time (a dead or stalled sender).
func (m *mailbox) get(w *World, rank, src, tag int) message {
	var expired bool
	if w.timeout > 0 {
		timer := time.AfterFunc(w.timeout, func() {
			m.mu.Lock()
			expired = true
			m.mu.Unlock()
			m.cond.Broadcast()
		})
		defer timer.Stop()
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	for {
		for i, msg := range m.pending {
			if msg.src == src && msg.tag == tag {
				m.pending = append(m.pending[:i], m.pending[i+1:]...)
				return msg
			}
		}
		if w.aborted.Load() {
			panic(ErrWorldAborted)
		}
		if expired {
			panic(fmt.Errorf("comm: rank %d: recv from rank %d tag %d timed out after %v: %w",
				rank, src, tag, w.timeout, ErrCollectiveTimeout))
		}
		m.cond.Wait()
	}
}

// World is a communicator: a fixed set of ranks with mailboxes, a reusable
// barrier, a reduction scratch area and a free list of message payload
// buffers. A world's point-to-point fabric is pluggable (see Transport):
// NewWorld wires the in-process channel transport, NewSocketWorld and
// JoinWorld wire the socket transport so the same world contract spans OS
// processes.
type World struct {
	size  int
	boxes []*mailbox

	// tr routes every point-to-point payload; local lists the ranks this
	// process runs (all of them for in-process and loopback worlds, exactly
	// one for a JoinWorld member); dist selects the message-based collective
	// implementations (dist.go) over the shared-scratch ones below.
	tr       Transport
	local    []int
	dist     bool
	procExit bool

	bar barrier

	redMu  sync.Mutex
	redBuf []float64
	redCRC []uint32 // per-rank CRC of the staged contribution (checksums mode)

	// Message payload free list. Send draws its copy buffer from here and
	// RecvInto returns consumed payloads, so a steady-state halo exchange
	// allocates nothing: once enough buffers of the right capacity are in
	// circulation, every message reuses one.
	bufMu sync.Mutex
	bufs  [][]float64

	// Resilience state, all dormant by default: an optional fault injector,
	// an optional per-collective deadline, and the abort latch that tears
	// the world down once any rank fails so its peers surface structured
	// errors instead of deadlocking.
	injector FaultInjector
	timeout  time.Duration
	aborted  atomic.Bool
	abortMu  sync.Mutex
	abortErr error

	// Silent-data-corruption defence, off by default: when checks is set
	// every payload and reduction contribution carries a CRC-32C verified
	// on receipt. detected counts CRC mismatches, recovered the mismatches
	// repaired from the retransmission copy; a detection that cannot be
	// repaired escalates as a CorruptionError panic.
	checks    bool
	detected  atomic.Uint64
	recovered atomic.Uint64
}

// NewWorld creates a communicator with the given number of ranks.
func NewWorld(size int) *World {
	if size <= 0 {
		panic(fmt.Sprintf("comm: world size must be positive, got %d", size))
	}
	w := &World{
		size:   size,
		boxes:  make([]*mailbox, size),
		redBuf: make([]float64, size),
		redCRC: make([]uint32, size),
		bufs:   make([][]float64, 0, 8*size+16),
	}
	for i := range w.boxes {
		w.boxes[i] = newMailbox()
	}
	w.tr = chanTransport{w}
	w.local = make([]int, size)
	for i := range w.local {
		w.local[i] = i
	}
	w.bar.init(size)
	return w
}

// getBuf returns a payload buffer of length n, reusing a pooled one when a
// large enough buffer is free. Undersized pool entries are left for smaller
// messages rather than discarded, since halo exchanges interleave two
// stable message sizes (column strips and row strips).
func (w *World) getBuf(n int) []float64 {
	w.bufMu.Lock()
	for i := len(w.bufs) - 1; i >= 0; i-- {
		if cap(w.bufs[i]) >= n {
			b := w.bufs[i][:n]
			last := len(w.bufs) - 1
			w.bufs[i] = w.bufs[last]
			w.bufs = w.bufs[:last]
			w.bufMu.Unlock()
			return b
		}
	}
	w.bufMu.Unlock()
	return make([]float64, n)
}

// putBuf returns a payload buffer to the free list. Buffers beyond the
// list's fixed capacity are dropped so the pool cannot grow unboundedly.
func (w *World) putBuf(b []float64) {
	if cap(b) == 0 {
		return
	}
	w.bufMu.Lock()
	if len(w.bufs) < cap(w.bufs) {
		w.bufs = append(w.bufs, b)
	}
	w.bufMu.Unlock()
}

// Size returns the number of ranks in the world.
func (w *World) Size() int { return w.size }

// SetFaultInjector installs (or, with nil, removes) a fault injector
// consulted on every send and collective entry. Install before Run; the
// injector must be safe for concurrent use by all ranks.
func (w *World) SetFaultInjector(fi FaultInjector) { w.injector = fi }

// SetCollectiveTimeout installs a per-collective deadline: any receive or
// barrier that waits longer than d fails with ErrCollectiveTimeout, so a
// dead or stalled rank surfaces as a structured error on its peers rather
// than a hang. Zero disables the watchdog (the default).
func (w *World) SetCollectiveTimeout(d time.Duration) { w.timeout = d }

// SetChecksums switches payload checksumming on or off. With checks on,
// every Send carries a CRC-32C and a pristine retransmission copy of its
// payload, every Recv verifies it (repairing one corruption from the copy,
// escalating an unrepairable one as a CorruptionError), and every reduction
// contribution is verified by each reading rank. Install before Run.
func (w *World) SetChecksums(on bool) { w.checks = on }

// ChecksumStats returns the cumulative counts of detected CRC mismatches
// and of those silently repaired from the retransmission copy. Detections
// are counted per observing rank, so one corrupted reduction contribution
// read by N ranks counts N times. The counters survive Reset: they report
// the whole run, not the last attempt.
func (w *World) ChecksumStats() (detected, recovered uint64) {
	return w.detected.Load(), w.recovered.Load()
}

// Err returns the first rank failure recorded since the last Reset, or nil.
func (w *World) Err() error {
	w.abortMu.Lock()
	defer w.abortMu.Unlock()
	return w.abortErr
}

// Abort tears the world down: the cause is recorded (first caller wins) and
// every rank blocked in a receive or barrier is woken to fail with
// ErrWorldAborted. Run's recovery calls it automatically when a rank
// panics; external supervisors (e.g. a port detecting a dead rank) may call
// it directly.
func (w *World) Abort(cause error) {
	w.abortMu.Lock()
	if w.abortErr == nil {
		w.abortErr = cause
	}
	w.abortMu.Unlock()
	w.aborted.Store(true)
	// Lock-step each condition variable so a waiter either observes the
	// flag before sleeping or is already asleep and receives the broadcast.
	for _, box := range w.boxes {
		box.mu.Lock()
		box.mu.Unlock() //nolint:staticcheck // empty critical section orders the flag store
		box.cond.Broadcast()
	}
	w.bar.mu.Lock()
	w.bar.mu.Unlock() //nolint:staticcheck
	w.bar.cond.Broadcast()
}

// Reset clears transient communication state after a recovered failure so
// the world can be reused for a retry: pending messages are drained back to
// the payload pool, the barrier is re-armed and the abort latch cleared.
// Every rank must be quiescent (between operations) when Reset is called.
func (w *World) Reset() {
	for _, box := range w.boxes {
		box.mu.Lock()
		for _, msg := range box.pending {
			w.putBuf(msg.data)
			if msg.backup != nil {
				w.putBuf(msg.backup)
			}
		}
		box.pending = nil
		box.mu.Unlock()
	}
	w.bar.mu.Lock()
	w.bar.waiting = 0
	w.bar.gen++
	w.bar.mu.Unlock()
	w.bar.cond.Broadcast()
	w.abortMu.Lock()
	w.abortErr = nil
	w.abortMu.Unlock()
	w.aborted.Store(false)
}

// RunCtx is Run bounded by a context: a deadline on ctx tightens the
// per-collective watchdog (so a rank blocked in a receive or barrier cannot
// outlive the deadline), and cancellation aborts the world, waking every
// blocked rank to fail fast with the cancellation cause. The previous
// collective timeout is restored when RunCtx returns, so a world reused
// across calls keeps its configured watchdog.
func (w *World) RunCtx(ctx context.Context, fn func(r *Rank)) error {
	if ctx == nil {
		return w.Run(fn)
	}
	saved := w.timeout
	defer func() { w.timeout = saved }()
	if dl, ok := ctx.Deadline(); ok {
		if d := time.Until(dl); d > 0 && (w.timeout <= 0 || d < w.timeout) {
			w.timeout = d
		}
	}
	if done := ctx.Done(); done != nil {
		stop := make(chan struct{})
		var watcher sync.WaitGroup
		watcher.Add(1)
		go func() {
			defer watcher.Done()
			select {
			case <-done:
				w.Abort(fmt.Errorf("comm: run cancelled: %w", context.Cause(ctx)))
			case <-stop:
			}
		}()
		defer func() {
			close(stop)
			watcher.Wait()
		}()
	}
	return w.Run(fn)
}

// Run launches fn once per rank this process hosts — every rank for
// in-process and loopback worlds, the single joined rank for a JoinWorld
// member — each on its own goroutine, and blocks until every local rank
// returns. It is the moral equivalent of mpirun.
//
// A panicking rank no longer crashes the process: the panic is recovered
// into a RankError carrying the rank ID, its operation sequence number and
// the cause, the world is aborted so blocked peers fail fast with
// ErrWorldAborted instead of deadlocking, and Run returns the primary
// failure (joined with any other non-collateral rank failures).
func (w *World) Run(fn func(r *Rank)) error {
	var wg sync.WaitGroup
	errs := make([]error, len(w.local))
	wg.Add(len(w.local))
	for i, id := range w.local {
		go func(i, id int) {
			defer wg.Done()
			r := &Rank{world: w, id: id}
			defer func() {
				if p := recover(); p != nil {
					re := &RankError{Rank: id, Step: r.ops, Cause: p}
					errs[i] = re
					w.Abort(re)
				}
			}()
			fn(r)
		}(i, id)
	}
	wg.Wait()
	primary := w.Err()
	if primary == nil {
		return nil
	}
	out := []error{primary}
	for _, e := range errs {
		if e == nil || e == primary || errors.Is(e, ErrWorldAborted) {
			continue
		}
		out = append(out, e)
	}
	return errors.Join(out...)
}

// Rank is one process-equivalent within a World. Rank methods must only be
// called from the goroutine Run started for that rank.
type Rank struct {
	world *World
	id    int
	ops   int // operation sequence number (sends, receives, collectives)

	// staged is true while this rank's reduction contribution sits live in
	// the world's scratch slot (between staging and the post-read barrier);
	// armFlip carries a collective flip verdict that arrived while no
	// contribution was staged, to discharge at the next staging.
	staged  bool
	armFlip bool
}

// ID returns this rank's index in [0, Size).
func (r *Rank) ID() int { return r.id }

// Size returns the world size.
func (r *Rank) Size() int { return r.world.size }

// Ops returns the rank's communication-operation count, the sequence number
// fault schedules and RankError.Step refer to.
func (r *Rank) Ops() int { return r.ops }

// inject consults the installed fault injector's verdict for the current
// operation and applies the rank-local actions. It reports whether the
// operation should be dropped (sends only); corrupt and flip are applied by
// the caller to the payload copy (or, for collectives, to the staged
// reduction contribution).
func (r *Rank) inject(act Action) (drop, corrupt, flip bool) {
	switch act {
	case ActDrop:
		return true, false, false
	case ActCorrupt:
		return false, true, false
	case ActFlip:
		return false, false, true
	case ActDelay:
		if s, ok := r.world.injector.(*Schedule); ok {
			time.Sleep(s.delay())
		} else {
			time.Sleep(50 * time.Microsecond)
		}
	case ActStall:
		if s, ok := r.world.injector.(*Schedule); ok {
			time.Sleep(s.stall())
		} else {
			time.Sleep(50 * time.Millisecond)
		}
	case ActKill:
		panic(fmt.Errorf("comm: rank %d killed at op %d: %w", r.id, r.ops, ErrKilled))
	case ActKillProc:
		if r.world.procExit {
			// A fleet worker dies for real: exit(137) mimics SIGKILL's shell
			// status, and the supervisor must notice via heartbeat/exit, not
			// via an error return.
			fmt.Fprintf(os.Stderr, "comm: rank %d: fault injector killed process at op %d\n", r.id, r.ops)
			os.Exit(137)
		}
		panic(fmt.Errorf("comm: rank %d process-killed at op %d: %w", r.id, r.ops, ErrKilled))
	}
	return false, false, false
}

// flipShape returns the flip shape the injector recorded for this rank, or
// the default when the injector is not a *Schedule.
func (r *Rank) flipShape() flipSpec {
	if s, ok := r.world.injector.(*Schedule); ok {
		return s.flipFor(r.id)
	}
	return flipSpec{Bit: DefaultFlipBit}
}

// Send delivers a copy of data to dst with the given tag. Send is eager and
// never blocks.
func (r *Rank) Send(dst, tag int, data []float64) {
	r.ops++
	if dst < 0 || dst >= r.world.size {
		panic(fmt.Errorf("comm: rank %d: send to invalid rank %d (world size %d, tag %d)",
			r.id, dst, r.world.size, tag))
	}
	var corrupt, flip bool
	if fi := r.world.injector; fi != nil {
		var drop bool
		drop, corrupt, flip = r.inject(fi.OnSend(r.id, dst, tag, r.ops))
		if drop {
			return
		}
	}
	buf := r.world.getBuf(len(data))
	copy(buf, data)
	msg := message{src: r.id, tag: tag, data: buf}
	if r.world.checks {
		// Checksum and back up the payload as it left the caller's buffer,
		// before any injected wire fault touches the copy: the CRC attests
		// to the sender's intent, the backup is the bounded re-exchange.
		// Over a socket there is no shared memory to carry a backup through,
		// so distributed worlds send the CRC alone: detection still works at
		// the receiver, but an unrepairable mismatch escalates directly.
		msg.crc = crcFloats(buf)
		msg.summed = true
		if !r.world.dist {
			msg.backup = r.world.getBuf(len(data))
			copy(msg.backup, data)
		}
	}
	if corrupt {
		for i := range buf {
			buf[i] = math.NaN()
		}
	}
	if flip && len(buf) > 0 {
		fs := r.flipShape()
		idx := fs.Idx
		if idx >= len(buf) {
			idx = len(buf) - 1
		}
		buf[idx] = FlipBits(buf[idx], fs.Bit)
		if fs.Sticky && msg.backup != nil {
			// A sticky flip hits the retransmission copy too, modelling
			// corruption at the source rather than on the wire: detection
			// cannot repair it and must escalate.
			msg.backup[idx] = FlipBits(msg.backup[idx], fs.Bit)
		}
	}
	r.world.deliver(dst, msg)
}

// Recv blocks until a message from src with the given tag arrives and
// returns its payload. Messages from the same (src, tag) are received in
// send order.
func (r *Rank) Recv(src, tag int) []float64 {
	r.ops++
	if src < 0 || src >= r.world.size {
		panic(fmt.Errorf("comm: rank %d: recv from invalid rank %d (world size %d, tag %d)",
			r.id, src, r.world.size, tag))
	}
	msg := r.world.boxes[r.id].get(r.world, r.id, src, tag)
	return r.verify(msg, src, tag)
}

// verify checks a checksummed message's payload against its CRC. A mismatch
// is repaired once from the retransmission copy — the bounded re-exchange —
// and an unrepairable mismatch escalates as a CorruptionError panic, which
// World.Run wraps into a RankError for the driver's rollback machinery.
// Unsummed messages (checksums off at send) pass through untouched.
func (r *Rank) verify(msg message, src, tag int) []float64 {
	if !msg.summed {
		return msg.data
	}
	w := r.world
	got := crcFloats(msg.data)
	if got == msg.crc {
		if msg.backup != nil {
			w.putBuf(msg.backup)
		}
		return msg.data
	}
	w.detected.Add(1)
	if msg.backup != nil && crcFloats(msg.backup) == msg.crc {
		w.putBuf(msg.data)
		w.recovered.Add(1)
		return msg.backup
	}
	if msg.backup != nil {
		w.putBuf(msg.backup)
	}
	panic(&CorruptionError{Rank: r.id, Src: src, Tag: tag, Op: r.ops, Want: msg.crc, Got: got})
}

// RecvInto receives from (src, tag) into dst and returns the element count.
// It panics if the payload does not fit: a size mismatch in a halo exchange
// is a protocol bug, not a recoverable condition. Unlike Recv, the consumed
// payload buffer is recycled into the world's free list, so steady-state
// exchanges built on Send/RecvInto are allocation-free.
func (r *Rank) RecvInto(src, tag int, dst []float64) int {
	data := r.Recv(src, tag)
	if len(data) > len(dst) {
		panic(fmt.Errorf("comm: rank %d: message of %d elems from rank %d tag %d overflows buffer of %d",
			r.id, len(data), src, tag, len(dst)))
	}
	copy(dst, data)
	n := len(data)
	r.world.putBuf(data)
	return n
}

// Sendrecv sends to dst and receives from src in one operation, the
// deadlock-free exchange primitive halo swaps are built on.
func (r *Rank) Sendrecv(dst, sendTag int, sendData []float64, src, recvTag int) []float64 {
	r.Send(dst, sendTag, sendData)
	return r.Recv(src, recvTag)
}

// Barrier blocks until every rank in the world has entered it.
func (r *Rank) Barrier() {
	if r.world.dist {
		r.distBarrier()
		return
	}
	r.ops++
	if fi := r.world.injector; fi != nil {
		if _, _, flip := r.inject(fi.OnCollective(r.id, r.ops)); flip {
			// A flip at a collective corrupts this rank's staged reduction
			// contribution — after the CRC was staged, so a checksummed
			// Allreduce detects it at every reading rank. At a bare barrier
			// (or a reduction's post-read barrier) the slot holds stale
			// scratch, so the verdict is armed instead and discharges at the
			// next staging — a one-shot flip rule always corrupts something
			// observable rather than silently evaporating.
			if r.staged {
				w := r.world
				w.redBuf[r.id] = FlipBits(w.redBuf[r.id], r.flipShape().Bit)
			} else {
				r.armFlip = true
			}
		}
	}
	r.world.bar.wait(r.world, r.id)
}

// barrier is a reusable sense-reversing barrier.
type barrier struct {
	mu      sync.Mutex
	cond    *sync.Cond
	size    int
	waiting int
	gen     uint64
}

func (b *barrier) init(size int) {
	b.size = size
	b.cond = sync.NewCond(&b.mu)
}

// wait blocks until all ranks arrive. Like mailbox.get it fails by panic —
// recovered into a RankError by World.Run — when the world aborts or the
// collective deadline expires before the barrier completes.
func (b *barrier) wait(w *World, rank int) {
	var expired bool
	if w.timeout > 0 {
		timer := time.AfterFunc(w.timeout, func() {
			b.mu.Lock()
			expired = true
			b.mu.Unlock()
			b.cond.Broadcast()
		})
		defer timer.Stop()
	}
	b.mu.Lock()
	gen := b.gen
	b.waiting++
	if b.waiting == b.size {
		b.waiting = 0
		b.gen++
		b.mu.Unlock()
		b.cond.Broadcast()
		return
	}
	for gen == b.gen {
		if w.aborted.Load() {
			b.waiting--
			b.mu.Unlock()
			panic(ErrWorldAborted)
		}
		if expired {
			b.waiting--
			b.mu.Unlock()
			panic(fmt.Errorf("comm: rank %d: barrier timed out after %v (%d of %d ranks arrived): %w",
				rank, w.timeout, b.waiting+1, b.size, ErrCollectiveTimeout))
		}
		b.cond.Wait()
	}
	b.mu.Unlock()
}

// Op is a reduction operator for Allreduce.
type Op int

const (
	// OpSum adds contributions.
	OpSum Op = iota
	// OpMin takes the minimum.
	OpMin
	// OpMax takes the maximum.
	OpMax
)

// Allreduce combines one float64 per rank with the given operator and
// returns the result on every rank. The combination is performed in rank
// order on every rank, so the result is bitwise identical across ranks and
// across runs — the determinism the cross-backend verification tests rely
// on.
func (r *Rank) Allreduce(x float64, op Op) float64 {
	w := r.world
	if w.dist {
		return r.distAllreduce(x, op)
	}
	w.redBuf[r.id] = x
	if w.checks {
		w.redCRC[r.id] = crcFloat(x)
	}
	if r.armFlip {
		// Discharge a flip verdict that arrived while nothing was staged:
		// the CRC above already attests to the true contribution, so every
		// reading rank detects the corruption.
		r.armFlip = false
		w.redBuf[r.id] = FlipBits(w.redBuf[r.id], r.flipShape().Bit)
	}
	r.staged = true
	r.Barrier() // all contributions visible
	var acc float64
	for i := 0; i < w.size; i++ {
		v := w.redBuf[i]
		if w.checks {
			if got := crcFloat(v); got != w.redCRC[i] {
				// A reduction contribution lives in shared scratch: there is
				// no retransmission copy to repair from, so every detection
				// escalates directly (Tag -1 marks a collective).
				w.detected.Add(1)
				panic(&CorruptionError{Rank: r.id, Src: i, Tag: -1, Op: r.ops, Want: w.redCRC[i], Got: got})
			}
		}
		if i == 0 {
			acc = v
			continue
		}
		switch op {
		case OpSum:
			acc += v
		case OpMin:
			if v < acc {
				acc = v
			}
		case OpMax:
			if v > acc {
				acc = v
			}
		}
	}
	r.staged = false // the slot is dead scratch from here on
	r.Barrier()      // all ranks done reading before any next write
	return acc
}

// AllreduceSum is Allreduce with OpSum.
func (r *Rank) AllreduceSum(x float64) float64 { return r.Allreduce(x, OpSum) }

// AllreduceVec element-wise sums a small vector across ranks; every rank
// receives the combined vector. All ranks must pass slices of equal length.
// It is used where TeaLeaf reduces several scalars in one MPI_Allreduce
// (e.g. the field summary's five quantities).
func (r *Rank) AllreduceVec(xs []float64) []float64 {
	out := make([]float64, len(xs))
	copy(out, xs)
	r.AllreduceVecInPlace(out)
	return out
}

// AllreduceVecInPlace is AllreduceVec writing the combined vector back into
// xs, for callers that keep a reusable scratch vector and need the
// reduction to be allocation-free.
func (r *Rank) AllreduceVecInPlace(xs []float64) {
	// Serialise vector reductions through the scratch area by staging each
	// element in turn; vectors here are tiny (<=8 elements).
	for i, x := range xs {
		xs[i] = r.Allreduce(x, OpSum)
	}
}

// Bcast distributes root's value to every rank.
func (r *Rank) Bcast(x float64, root int) float64 {
	w := r.world
	if w.dist {
		return r.distBcast(x, root)
	}
	if r.id == root {
		w.redBuf[root] = x
		if w.checks {
			w.redCRC[root] = crcFloat(x)
		}
		if r.armFlip {
			r.armFlip = false
			w.redBuf[root] = FlipBits(w.redBuf[root], r.flipShape().Bit)
		}
		r.staged = true
	}
	r.Barrier()
	v := w.redBuf[root]
	if w.checks {
		if got := crcFloat(v); got != w.redCRC[root] {
			w.detected.Add(1)
			panic(&CorruptionError{Rank: r.id, Src: root, Tag: -1, Op: r.ops, Want: w.redCRC[root], Got: got})
		}
	}
	r.staged = false
	r.Barrier()
	return v
}
