package comm

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"strconv"
	"strings"
	"sync"
	"time"
)

// This file is the fault model of the message-passing runtime: a pluggable,
// deterministic injector that can drop, delay or corrupt messages, stall a
// rank, or kill it mid-operation, plus the structured errors the recovery
// path in World.Run surfaces. Everything here is dormant until an injector
// or a collective deadline is installed: the steady-state Send/Recv/Barrier
// paths pay one nil-check and an integer increment, nothing more.

// Action is what the fault injector does to one communication operation.
type Action int

const (
	// ActNone lets the operation proceed untouched.
	ActNone Action = iota
	// ActDrop silently discards the message (sends only).
	ActDrop
	// ActDelay delays the operation by the schedule's delay duration.
	ActDelay
	// ActCorrupt poisons the message payload with NaNs (sends only).
	ActCorrupt
	// ActStall blocks the rank for the schedule's stall duration — long
	// enough to trip a collective watchdog on its peers.
	ActStall
	// ActKill panics the rank with ErrKilled, simulating a process death.
	ActKill
	// ActFlip XORs one bit of one payload element (sends) or of the rank's
	// staged reduction contribution (collectives): a deterministic *finite*
	// silent-data-corruption, unlike the NaN poisoning of ActCorrupt. The
	// bit, element index and stickiness come from the rule (see Rule.Bit).
	ActFlip
	// ActPartition severs the wire links touching a rank for the rule's
	// duration: established connections drop and redials fail, exercising
	// the socket transport's reconnect-and-replay path. Frame-level (see
	// FrameInjector); inert on the in-process transport.
	ActPartition
	// ActSlowlink delays matching wire frames with the rule's probability —
	// a continuously lossy-slow link rather than a one-shot fault. Frame
	// level; inert on the in-process transport.
	ActSlowlink
	// ActKillProc kills the matching rank like ActKill, but on a world
	// where process exits are enabled (a fleet worker) it exits the whole
	// OS process — a genuine death its supervisor must detect and migrate
	// around, not a recoverable in-process panic.
	ActKillProc
)

func (a Action) String() string {
	switch a {
	case ActNone:
		return "none"
	case ActDrop:
		return "drop"
	case ActDelay:
		return "delay"
	case ActCorrupt:
		return "corrupt"
	case ActStall:
		return "stall"
	case ActKill:
		return "kill"
	case ActFlip:
		return "flip"
	case ActPartition:
		return "partition"
	case ActSlowlink:
		return "slowlink"
	case ActKillProc:
		return "killproc"
	default:
		return fmt.Sprintf("Action(%d)", int(a))
	}
}

// FaultInjector decides, per communication operation, whether to perturb
// it. Implementations must be safe for concurrent use from all ranks and,
// for reproducible experiments, deterministic for a fixed schedule/seed.
type FaultInjector interface {
	// OnSend is consulted once per point-to-point send, on the sending
	// rank, with the rank's operation sequence number.
	OnSend(rank, dst, tag, op int) Action
	// OnCollective is consulted once per collective entry (barrier,
	// allreduce, broadcast).
	OnCollective(rank, op int) Action
}

// Sentinel errors of the resilience layer. RankError wraps one of these (or
// an arbitrary panic value) as its Cause.
var (
	// ErrKilled marks a rank killed by the fault injector.
	ErrKilled = errors.New("comm: rank killed by fault injector")
	// ErrWorldAborted marks a rank that failed only because another rank
	// failed first and the world was torn down under it.
	ErrWorldAborted = errors.New("comm: world aborted after another rank failed")
	// ErrCollectiveTimeout marks a collective or receive that exceeded the
	// world's collective deadline — the watchdog's signal that a peer rank
	// is dead or stalled rather than slow.
	ErrCollectiveTimeout = errors.New("comm: collective deadline exceeded")
	// ErrCorruption marks a CRC-32C mismatch on a received payload or a
	// reduction contribution that bounded retransmission could not repair —
	// silent data corruption caught before it folded into the physics.
	ErrCorruption = errors.New("comm: silent payload corruption detected")
)

// CorruptionError is the structured report of one detected-but-unrepaired
// corruption: which rank detected it, which rank's data failed its
// checksum, on which tag (-1 for a collective), and the CRC pair. It routes
// through the same RankError/rollback machinery as a crash: the detecting
// rank panics with it, World.Run wraps it, and the resilient driver rolls
// back to the last validated checkpoint.
type CorruptionError struct {
	Rank      int    // detecting rank
	Src       int    // rank whose payload/contribution failed validation
	Tag       int    // message tag, or -1 for a collective
	Op        int    // detecting rank's comm-operation sequence number
	Want, Got uint32 // stored and recomputed CRC-32C
}

func (e *CorruptionError) Error() string {
	if e.Tag < 0 {
		return fmt.Sprintf("comm: rank %d: contribution from rank %d failed CRC at op %d (stored %08x, computed %08x): %v",
			e.Rank, e.Src, e.Op, e.Want, e.Got, ErrCorruption)
	}
	return fmt.Sprintf("comm: rank %d: payload from rank %d tag %d failed CRC at op %d (stored %08x, computed %08x): %v",
		e.Rank, e.Src, e.Tag, e.Op, e.Want, e.Got, ErrCorruption)
}

// Unwrap exposes ErrCorruption to errors.Is chains.
func (e *CorruptionError) Unwrap() error { return ErrCorruption }

// RankError is the structured failure of one rank: which rank, at which of
// its communication operations (a per-rank sequence number over sends,
// receives and collectives), and the recovered cause.
type RankError struct {
	Rank  int
	Step  int // the rank's comm-operation sequence number at failure
	Cause any
}

func (e *RankError) Error() string {
	return fmt.Sprintf("comm: rank %d failed at op %d: %v", e.Rank, e.Step, e.Cause)
}

// Unwrap exposes an error Cause to errors.Is/As chains.
func (e *RankError) Unwrap() error {
	if err, ok := e.Cause.(error); ok {
		return err
	}
	return nil
}

// Rule is one entry of a fault Schedule. A rule fires when a matching rank
// reaches the given operation sequence number (Op > 0) — more precisely, at
// the rank's first injectable operation at or after that number, since the
// sequence also counts receives, which are perturbed only indirectly —
// or, when Op == 0, independently with probability Prob per matching
// operation, drawn from the schedule's seeded per-rank streams. Every rule
// fires at most once.
type Rule struct {
	Action Action
	Rank   int     // matching rank, or -1 for any
	Op     int     // exact op sequence number; 0 means probabilistic
	Tag    int     // matching send tag, or -1 for any (ignored for collectives)
	Prob   float64 // per-op firing probability when Op == 0

	// Flip shape, used only by ActFlip rules. Bit is the bit index XORed
	// into the targeted float64 (0 = LSB of the mantissa, 52 = low exponent
	// bit — a finite ×2/÷2 —, 63 = sign); Idx is the payload element index
	// (clamped to the payload, ignored for collectives); Sticky makes the
	// flip hit the retransmission copy too, so a checksummed receive cannot
	// repair it and must escalate to CorruptionError.
	Bit    int
	Idx    int
	Sticky bool

	// Dur is the partition window of an ActPartition rule (required) or the
	// per-frame delay of an ActSlowlink rule (default 2ms when zero). Unused
	// by the operation-level actions, whose delays come from Schedule.Delay.
	Dur time.Duration
}

// DefaultFlipBit is the bit a flip rule targets when the spec names none:
// the lowest exponent bit, which doubles or halves the value — a large,
// always-finite corruption that any invariant monitor worth its name must
// catch.
const DefaultFlipBit = 52

// flipSpec is the rank-local record of the flip shape the last matched
// ActFlip rule asked for.
type flipSpec struct {
	Bit    int
	Idx    int
	Sticky bool
}

// FlipBits XORs bit (0..63) into the IEEE-754 representation of x — the
// canonical single-event-upset model.
func FlipBits(x float64, bit int) float64 {
	return math.Float64frombits(math.Float64bits(x) ^ (1 << (uint(bit) & 63)))
}

// Schedule is the deterministic, seeded FaultInjector used by the chaos
// tests and the -fault-spec CLI flag. Probabilistic rules draw from
// independent per-rank streams derived from Seed, so a schedule replays
// identically for a fixed world size regardless of goroutine interleaving.
type Schedule struct {
	Rules []Rule
	Seed  int64
	// Delay and Stall are the durations ActDelay and ActStall insert;
	// zero values take the defaults (50µs and 50ms).
	Delay time.Duration
	Stall time.Duration

	mu        sync.Mutex
	fired     map[int]bool
	streams   map[int]*rand.Rand
	lastFlip  map[int]flipSpec  // per-rank shape of the last matched flip rule
	partSince map[int]time.Time // per-rule wall-clock start of an active partition
}

// NewSchedule builds an empty schedule with the given seed.
func NewSchedule(seed int64) *Schedule { return &Schedule{Seed: seed} }

func (s *Schedule) delay() time.Duration {
	if s.Delay > 0 {
		return s.Delay
	}
	return 50 * time.Microsecond
}

func (s *Schedule) stall() time.Duration {
	if s.Stall > 0 {
		return s.Stall
	}
	return 50 * time.Millisecond
}

// match returns the action of the first unfired matching rule, marking it
// fired. collective sends tag = -1.
func (s *Schedule) match(rank, tag, op int) Action {
	s.mu.Lock()
	defer s.mu.Unlock()
	for i, r := range s.Rules {
		if s.fired[i] {
			continue
		}
		// Frame-level rules act on the wire (OnFrame), never on the
		// operation path.
		if r.Action == ActPartition || r.Action == ActSlowlink {
			continue
		}
		if r.Rank >= 0 && r.Rank != rank {
			continue
		}
		if r.Tag >= 0 && tag >= 0 && r.Tag != tag {
			continue
		}
		if r.Op > 0 {
			if op < r.Op {
				continue
			}
		} else {
			if r.Prob <= 0 || s.stream(rank).Float64() >= r.Prob {
				continue
			}
		}
		if s.fired == nil {
			s.fired = make(map[int]bool)
		}
		s.fired[i] = true
		if r.Action == ActFlip {
			if s.lastFlip == nil {
				s.lastFlip = make(map[int]flipSpec)
			}
			s.lastFlip[rank] = flipSpec{Bit: r.Bit, Idx: r.Idx, Sticky: r.Sticky}
		}
		return r.Action
	}
	return ActNone
}

// flipFor returns the flip shape recorded for rank by the last matched
// ActFlip rule, or the default shape.
func (s *Schedule) flipFor(rank int) flipSpec {
	s.mu.Lock()
	defer s.mu.Unlock()
	if fs, ok := s.lastFlip[rank]; ok {
		return fs
	}
	return flipSpec{Bit: DefaultFlipBit}
}

// stream returns rank's private random stream. Caller holds s.mu.
func (s *Schedule) stream(rank int) *rand.Rand {
	if s.streams == nil {
		s.streams = make(map[int]*rand.Rand)
	}
	r, ok := s.streams[rank]
	if !ok {
		r = rand.New(rand.NewSource(s.Seed*1_000_003 + int64(rank)))
		s.streams[rank] = r
	}
	return r
}

// OnSend implements FaultInjector.
func (s *Schedule) OnSend(rank, dst, tag, op int) Action { return s.match(rank, tag, op) }

// OnCollective implements FaultInjector.
func (s *Schedule) OnCollective(rank, op int) Action { return s.match(rank, -1, op) }

// FrameVerdict is a frame injector's decision about one wire frame.
type FrameVerdict struct {
	// Cut drops the connection carrying the frame (and fails redials while
	// the partition stays active); the transport's reconnect-and-replay
	// machinery is expected to deliver the frame eventually.
	Cut bool
	// Delay holds the frame back before it is written.
	Delay time.Duration
}

// FrameInjector perturbs individual wire frames of a socket transport —
// the layer below FaultInjector's operation-level faults. Implementations
// must be safe for concurrent use from every link's writer goroutine.
type FrameInjector interface {
	// OnFrame is consulted before each frame write and each dial attempt
	// from src towards dst (heartbeats included).
	OnFrame(src, dst int) FrameVerdict
}

// OnFrame implements FrameInjector: ActPartition rules cut every frame and
// dial touching the rule's rank for Dur from the first matching frame (then
// retire); ActSlowlink rules delay matching frames with probability Prob
// for as long as the schedule lives.
func (s *Schedule) OnFrame(src, dst int) FrameVerdict {
	s.mu.Lock()
	defer s.mu.Unlock()
	var v FrameVerdict
	for i, r := range s.Rules {
		switch r.Action {
		case ActPartition:
			if s.fired[i] {
				continue
			}
			if r.Rank >= 0 && r.Rank != src && r.Rank != dst {
				continue
			}
			since, ok := s.partSince[i]
			if !ok {
				if s.partSince == nil {
					s.partSince = make(map[int]time.Time)
				}
				since = time.Now()
				s.partSince[i] = since
			}
			if time.Since(since) < r.Dur {
				v.Cut = true
			} else {
				if s.fired == nil {
					s.fired = make(map[int]bool)
				}
				s.fired[i] = true
			}
		case ActSlowlink:
			if r.Rank >= 0 && r.Rank != src && r.Rank != dst {
				continue
			}
			if r.Prob > 0 && s.stream(src).Float64() < r.Prob {
				d := r.Dur
				if d <= 0 {
					d = 2 * time.Millisecond
				}
				if d > v.Delay {
					v.Delay = d
				}
			}
		}
	}
	return v
}

// Reset re-arms every fired rule and rewinds the probabilistic streams, so
// the same schedule can drive a second, identical run.
func (s *Schedule) Reset() {
	s.mu.Lock()
	s.fired = nil
	s.streams = nil
	s.lastFlip = nil
	s.partSince = nil
	s.mu.Unlock()
}

// ParseSpec parses a fault specification string into a Schedule. The
// grammar is semicolon-separated clauses
//
//	action:key=value[,key=value...]
//
// with actions drop|delay|corrupt|stall|kill|flip|partition|slowlink|killproc
// and keys rank, op (step is an accepted alias), tag, prob, seed (seed
// applies to the whole schedule); flip additionally takes bit (0..63,
// default 52), idx (payload element, default 0) and sticky (0|1: corrupt
// the retransmission copy too). The transport-level actions take: partition
// rank and dur (required window, e.g. dur=2s); slowlink rank, prob
// (required) and delay (per-frame hold, default 2ms); killproc rank and
// op/step. partition and slowlink act on socket-transport frames and are
// inert in-process. Examples:
//
//	kill:rank=1,op=40
//	corrupt:rank=0,op=25;drop:prob=0.01,seed=7
//	flip:rank=1,op=30,bit=12
//	partition:rank=1,dur=2s
//	slowlink:prob=0.05,delay=5ms;killproc:rank=2,step=40
func ParseSpec(spec string) (*Schedule, error) {
	s := &Schedule{}
	for _, clause := range strings.Split(spec, ";") {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			continue
		}
		name, args, _ := strings.Cut(clause, ":")
		var act Action
		switch strings.TrimSpace(name) {
		case "drop":
			act = ActDrop
		case "delay":
			act = ActDelay
		case "corrupt":
			act = ActCorrupt
		case "stall":
			act = ActStall
		case "kill":
			act = ActKill
		case "flip":
			act = ActFlip
		case "partition":
			act = ActPartition
		case "slowlink":
			act = ActSlowlink
		case "killproc":
			act = ActKillProc
		default:
			return nil, fmt.Errorf("comm: fault spec: unknown action %q in %q", name, clause)
		}
		r := Rule{Action: act, Rank: -1, Tag: -1}
		if act == ActFlip {
			r.Bit = DefaultFlipBit
		}
		if args != "" {
			for _, kv := range strings.Split(args, ",") {
				key, val, ok := strings.Cut(kv, "=")
				if !ok {
					return nil, fmt.Errorf("comm: fault spec: malformed %q in %q", kv, clause)
				}
				switch strings.TrimSpace(key) {
				case "rank":
					n, err := strconv.Atoi(val)
					if err != nil {
						return nil, fmt.Errorf("comm: fault spec: bad rank %q: %w", val, err)
					}
					r.Rank = n
				case "op", "step":
					if act == ActPartition || act == ActSlowlink {
						return nil, fmt.Errorf("comm: fault spec: key %q does not apply to %v (frame-level action)", key, act)
					}
					n, err := strconv.Atoi(val)
					if err != nil || n <= 0 {
						return nil, fmt.Errorf("comm: fault spec: bad op %q (want positive integer)", val)
					}
					r.Op = n
				case "tag":
					if act == ActPartition || act == ActSlowlink || act == ActKillProc {
						return nil, fmt.Errorf("comm: fault spec: key %q does not apply to %v", key, act)
					}
					n, err := strconv.Atoi(val)
					if err != nil {
						return nil, fmt.Errorf("comm: fault spec: bad tag %q: %w", val, err)
					}
					r.Tag = n
				case "prob":
					if act == ActPartition || act == ActKillProc {
						return nil, fmt.Errorf("comm: fault spec: key %q does not apply to %v", key, act)
					}
					p, err := strconv.ParseFloat(val, 64)
					if err != nil || p < 0 || p > 1 {
						return nil, fmt.Errorf("comm: fault spec: bad prob %q (want [0,1])", val)
					}
					r.Prob = p
				case "dur":
					if act != ActPartition {
						return nil, fmt.Errorf("comm: fault spec: key %q only applies to partition, not %v", key, act)
					}
					d, err := time.ParseDuration(val)
					if err != nil || d <= 0 {
						return nil, fmt.Errorf("comm: fault spec: bad dur %q (want positive duration like 2s)", val)
					}
					r.Dur = d
				case "delay":
					if act != ActSlowlink {
						return nil, fmt.Errorf("comm: fault spec: key %q only applies to slowlink, not %v", key, act)
					}
					d, err := time.ParseDuration(val)
					if err != nil || d <= 0 {
						return nil, fmt.Errorf("comm: fault spec: bad delay %q (want positive duration like 5ms)", val)
					}
					r.Dur = d
				case "seed":
					n, err := strconv.ParseInt(val, 10, 64)
					if err != nil {
						return nil, fmt.Errorf("comm: fault spec: bad seed %q: %w", val, err)
					}
					s.Seed = n
				case "bit":
					if act != ActFlip {
						return nil, fmt.Errorf("comm: fault spec: key %q only applies to flip, not %v", key, act)
					}
					n, err := strconv.Atoi(val)
					if err != nil || n < 0 || n > 63 {
						return nil, fmt.Errorf("comm: fault spec: bad bit %q (want 0..63)", val)
					}
					r.Bit = n
				case "idx":
					if act != ActFlip {
						return nil, fmt.Errorf("comm: fault spec: key %q only applies to flip, not %v", key, act)
					}
					n, err := strconv.Atoi(val)
					if err != nil || n < 0 {
						return nil, fmt.Errorf("comm: fault spec: bad idx %q (want non-negative integer)", val)
					}
					r.Idx = n
				case "sticky":
					if act != ActFlip {
						return nil, fmt.Errorf("comm: fault spec: key %q only applies to flip, not %v", key, act)
					}
					switch strings.TrimSpace(val) {
					case "1", "true":
						r.Sticky = true
					case "0", "false":
						r.Sticky = false
					default:
						return nil, fmt.Errorf("comm: fault spec: bad sticky %q (want 0 or 1)", val)
					}
				default:
					return nil, fmt.Errorf("comm: fault spec: unknown key %q in %q", key, clause)
				}
			}
		}
		switch act {
		case ActPartition:
			if r.Dur <= 0 {
				return nil, fmt.Errorf("comm: fault spec: clause %q needs dur=D", clause)
			}
		case ActSlowlink:
			if r.Prob <= 0 {
				return nil, fmt.Errorf("comm: fault spec: clause %q needs prob=P", clause)
			}
		case ActKillProc:
			if r.Op <= 0 {
				return nil, fmt.Errorf("comm: fault spec: clause %q needs op=N (or step=N)", clause)
			}
		default:
			if r.Op == 0 && r.Prob == 0 {
				return nil, fmt.Errorf("comm: fault spec: clause %q needs op=N or prob=P", clause)
			}
		}
		s.Rules = append(s.Rules, r)
	}
	if len(s.Rules) == 0 {
		return nil, errors.New("comm: fault spec: empty specification")
	}
	return s, nil
}

// Spec serialises the schedule back into the ParseSpec grammar, canonically:
// ParseSpec(s.Spec()) reconstructs the same rules and seed. This is the
// round-trip property the fuzz target pins, and what lets a schedule be
// logged and replayed exactly.
func (s *Schedule) Spec() string {
	var b strings.Builder
	for i, r := range s.Rules {
		if i > 0 {
			b.WriteByte(';')
		}
		b.WriteString(r.Action.String())
		var kvs []string
		if r.Rank >= 0 {
			kvs = append(kvs, "rank="+strconv.Itoa(r.Rank))
		}
		if r.Op > 0 {
			kvs = append(kvs, "op="+strconv.Itoa(r.Op))
		}
		if r.Tag >= 0 {
			kvs = append(kvs, "tag="+strconv.Itoa(r.Tag))
		}
		if r.Op <= 0 && r.Action != ActPartition {
			kvs = append(kvs, "prob="+strconv.FormatFloat(r.Prob, 'g', -1, 64))
		}
		if r.Action == ActPartition {
			kvs = append(kvs, "dur="+r.Dur.String())
		}
		if r.Action == ActSlowlink && r.Dur > 0 {
			kvs = append(kvs, "delay="+r.Dur.String())
		}
		if r.Action == ActFlip {
			if r.Bit != DefaultFlipBit {
				kvs = append(kvs, "bit="+strconv.Itoa(r.Bit))
			}
			if r.Idx != 0 {
				kvs = append(kvs, "idx="+strconv.Itoa(r.Idx))
			}
			if r.Sticky {
				kvs = append(kvs, "sticky=1")
			}
		}
		if i == 0 && s.Seed != 0 {
			kvs = append(kvs, "seed="+strconv.FormatInt(s.Seed, 10))
		}
		if len(kvs) > 0 {
			b.WriteByte(':')
			b.WriteString(strings.Join(kvs, ","))
		}
	}
	return b.String()
}
