package comm

import (
	"errors"
	"fmt"
	"math/rand"
	"strconv"
	"strings"
	"sync"
	"time"
)

// This file is the fault model of the message-passing runtime: a pluggable,
// deterministic injector that can drop, delay or corrupt messages, stall a
// rank, or kill it mid-operation, plus the structured errors the recovery
// path in World.Run surfaces. Everything here is dormant until an injector
// or a collective deadline is installed: the steady-state Send/Recv/Barrier
// paths pay one nil-check and an integer increment, nothing more.

// Action is what the fault injector does to one communication operation.
type Action int

const (
	// ActNone lets the operation proceed untouched.
	ActNone Action = iota
	// ActDrop silently discards the message (sends only).
	ActDrop
	// ActDelay delays the operation by the schedule's delay duration.
	ActDelay
	// ActCorrupt poisons the message payload with NaNs (sends only).
	ActCorrupt
	// ActStall blocks the rank for the schedule's stall duration — long
	// enough to trip a collective watchdog on its peers.
	ActStall
	// ActKill panics the rank with ErrKilled, simulating a process death.
	ActKill
)

func (a Action) String() string {
	switch a {
	case ActNone:
		return "none"
	case ActDrop:
		return "drop"
	case ActDelay:
		return "delay"
	case ActCorrupt:
		return "corrupt"
	case ActStall:
		return "stall"
	case ActKill:
		return "kill"
	default:
		return fmt.Sprintf("Action(%d)", int(a))
	}
}

// FaultInjector decides, per communication operation, whether to perturb
// it. Implementations must be safe for concurrent use from all ranks and,
// for reproducible experiments, deterministic for a fixed schedule/seed.
type FaultInjector interface {
	// OnSend is consulted once per point-to-point send, on the sending
	// rank, with the rank's operation sequence number.
	OnSend(rank, dst, tag, op int) Action
	// OnCollective is consulted once per collective entry (barrier,
	// allreduce, broadcast).
	OnCollective(rank, op int) Action
}

// Sentinel errors of the resilience layer. RankError wraps one of these (or
// an arbitrary panic value) as its Cause.
var (
	// ErrKilled marks a rank killed by the fault injector.
	ErrKilled = errors.New("comm: rank killed by fault injector")
	// ErrWorldAborted marks a rank that failed only because another rank
	// failed first and the world was torn down under it.
	ErrWorldAborted = errors.New("comm: world aborted after another rank failed")
	// ErrCollectiveTimeout marks a collective or receive that exceeded the
	// world's collective deadline — the watchdog's signal that a peer rank
	// is dead or stalled rather than slow.
	ErrCollectiveTimeout = errors.New("comm: collective deadline exceeded")
)

// RankError is the structured failure of one rank: which rank, at which of
// its communication operations (a per-rank sequence number over sends,
// receives and collectives), and the recovered cause.
type RankError struct {
	Rank  int
	Step  int // the rank's comm-operation sequence number at failure
	Cause any
}

func (e *RankError) Error() string {
	return fmt.Sprintf("comm: rank %d failed at op %d: %v", e.Rank, e.Step, e.Cause)
}

// Unwrap exposes an error Cause to errors.Is/As chains.
func (e *RankError) Unwrap() error {
	if err, ok := e.Cause.(error); ok {
		return err
	}
	return nil
}

// Rule is one entry of a fault Schedule. A rule fires when a matching rank
// reaches the given operation sequence number (Op > 0) — more precisely, at
// the rank's first injectable operation at or after that number, since the
// sequence also counts receives, which are perturbed only indirectly —
// or, when Op == 0, independently with probability Prob per matching
// operation, drawn from the schedule's seeded per-rank streams. Every rule
// fires at most once.
type Rule struct {
	Action Action
	Rank   int     // matching rank, or -1 for any
	Op     int     // exact op sequence number; 0 means probabilistic
	Tag    int     // matching send tag, or -1 for any (ignored for collectives)
	Prob   float64 // per-op firing probability when Op == 0
}

// Schedule is the deterministic, seeded FaultInjector used by the chaos
// tests and the -fault-spec CLI flag. Probabilistic rules draw from
// independent per-rank streams derived from Seed, so a schedule replays
// identically for a fixed world size regardless of goroutine interleaving.
type Schedule struct {
	Rules []Rule
	Seed  int64
	// Delay and Stall are the durations ActDelay and ActStall insert;
	// zero values take the defaults (50µs and 50ms).
	Delay time.Duration
	Stall time.Duration

	mu      sync.Mutex
	fired   map[int]bool
	streams map[int]*rand.Rand
}

// NewSchedule builds an empty schedule with the given seed.
func NewSchedule(seed int64) *Schedule { return &Schedule{Seed: seed} }

func (s *Schedule) delay() time.Duration {
	if s.Delay > 0 {
		return s.Delay
	}
	return 50 * time.Microsecond
}

func (s *Schedule) stall() time.Duration {
	if s.Stall > 0 {
		return s.Stall
	}
	return 50 * time.Millisecond
}

// match returns the action of the first unfired matching rule, marking it
// fired. collective sends tag = -1.
func (s *Schedule) match(rank, tag, op int) Action {
	s.mu.Lock()
	defer s.mu.Unlock()
	for i, r := range s.Rules {
		if s.fired[i] {
			continue
		}
		if r.Rank >= 0 && r.Rank != rank {
			continue
		}
		if r.Tag >= 0 && tag >= 0 && r.Tag != tag {
			continue
		}
		if r.Op > 0 {
			if op < r.Op {
				continue
			}
		} else {
			if r.Prob <= 0 || s.stream(rank).Float64() >= r.Prob {
				continue
			}
		}
		if s.fired == nil {
			s.fired = make(map[int]bool)
		}
		s.fired[i] = true
		return r.Action
	}
	return ActNone
}

// stream returns rank's private random stream. Caller holds s.mu.
func (s *Schedule) stream(rank int) *rand.Rand {
	if s.streams == nil {
		s.streams = make(map[int]*rand.Rand)
	}
	r, ok := s.streams[rank]
	if !ok {
		r = rand.New(rand.NewSource(s.Seed*1_000_003 + int64(rank)))
		s.streams[rank] = r
	}
	return r
}

// OnSend implements FaultInjector.
func (s *Schedule) OnSend(rank, dst, tag, op int) Action { return s.match(rank, tag, op) }

// OnCollective implements FaultInjector.
func (s *Schedule) OnCollective(rank, op int) Action { return s.match(rank, -1, op) }

// Reset re-arms every fired rule and rewinds the probabilistic streams, so
// the same schedule can drive a second, identical run.
func (s *Schedule) Reset() {
	s.mu.Lock()
	s.fired = nil
	s.streams = nil
	s.mu.Unlock()
}

// ParseSpec parses a fault specification string into a Schedule. The
// grammar is semicolon-separated clauses
//
//	action:key=value[,key=value...]
//
// with actions drop|delay|corrupt|stall|kill and keys rank, op, tag, prob,
// seed (seed applies to the whole schedule). Examples:
//
//	kill:rank=1,op=40
//	corrupt:rank=0,op=25;drop:prob=0.01,seed=7
func ParseSpec(spec string) (*Schedule, error) {
	s := &Schedule{}
	for _, clause := range strings.Split(spec, ";") {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			continue
		}
		name, args, _ := strings.Cut(clause, ":")
		var act Action
		switch strings.TrimSpace(name) {
		case "drop":
			act = ActDrop
		case "delay":
			act = ActDelay
		case "corrupt":
			act = ActCorrupt
		case "stall":
			act = ActStall
		case "kill":
			act = ActKill
		default:
			return nil, fmt.Errorf("comm: fault spec: unknown action %q in %q", name, clause)
		}
		r := Rule{Action: act, Rank: -1, Tag: -1}
		if args != "" {
			for _, kv := range strings.Split(args, ",") {
				key, val, ok := strings.Cut(kv, "=")
				if !ok {
					return nil, fmt.Errorf("comm: fault spec: malformed %q in %q", kv, clause)
				}
				switch strings.TrimSpace(key) {
				case "rank":
					n, err := strconv.Atoi(val)
					if err != nil {
						return nil, fmt.Errorf("comm: fault spec: bad rank %q: %w", val, err)
					}
					r.Rank = n
				case "op":
					n, err := strconv.Atoi(val)
					if err != nil || n <= 0 {
						return nil, fmt.Errorf("comm: fault spec: bad op %q (want positive integer)", val)
					}
					r.Op = n
				case "tag":
					n, err := strconv.Atoi(val)
					if err != nil {
						return nil, fmt.Errorf("comm: fault spec: bad tag %q: %w", val, err)
					}
					r.Tag = n
				case "prob":
					p, err := strconv.ParseFloat(val, 64)
					if err != nil || p < 0 || p > 1 {
						return nil, fmt.Errorf("comm: fault spec: bad prob %q (want [0,1])", val)
					}
					r.Prob = p
				case "seed":
					n, err := strconv.ParseInt(val, 10, 64)
					if err != nil {
						return nil, fmt.Errorf("comm: fault spec: bad seed %q: %w", val, err)
					}
					s.Seed = n
				default:
					return nil, fmt.Errorf("comm: fault spec: unknown key %q in %q", key, clause)
				}
			}
		}
		if r.Op == 0 && r.Prob == 0 {
			return nil, fmt.Errorf("comm: fault spec: clause %q needs op=N or prob=P", clause)
		}
		s.Rules = append(s.Rules, r)
	}
	if len(s.Rules) == 0 {
		return nil, errors.New("comm: fault spec: empty specification")
	}
	return s, nil
}
