package comm

import (
	"errors"
	"math"
	"testing"
	"time"
)

// TestRunRecoversKilledRank: a rank killed mid-collective must surface as a
// structured RankError from Run — with the surviving ranks unblocked by the
// world abort, not deadlocked in the barrier — and the process must live.
func TestRunRecoversKilledRank(t *testing.T) {
	w := NewWorld(4)
	sched := NewSchedule(1)
	sched.Rules = []Rule{{Action: ActKill, Rank: 1, Op: 3, Tag: -1}}
	w.SetFaultInjector(sched)

	done := make(chan error, 1)
	go func() {
		done <- w.Run(func(r *Rank) {
			for i := 0; i < 10; i++ {
				r.AllreduceSum(float64(r.ID()))
			}
		})
	}()
	select {
	case err := <-done:
		var re *RankError
		if !errors.As(err, &re) {
			t.Fatalf("Run error = %v, want a *RankError", err)
		}
		if re.Rank != 1 {
			t.Errorf("failed rank = %d, want 1", re.Rank)
		}
		if !errors.Is(err, ErrKilled) {
			t.Errorf("error %v does not wrap ErrKilled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Run deadlocked after a rank kill (world abort did not propagate)")
	}
}

// TestInvalidRankSendBecomesRankError: the Send invalid-rank panic must be
// routed through the recovery path as a RankError naming rank and tag, not
// crash the process.
func TestInvalidRankSendBecomesRankError(t *testing.T) {
	w := NewWorld(2)
	err := w.Run(func(r *Rank) {
		if r.ID() == 0 {
			r.Send(99, 7, []float64{1})
		}
		// Rank 1 blocks in a receive; the abort must release it.
		if r.ID() == 1 {
			r.Recv(0, 42)
		}
	})
	var re *RankError
	if !errors.As(err, &re) || re.Rank != 0 {
		t.Fatalf("err = %v, want RankError on rank 0", err)
	}
	for _, want := range []string{"invalid rank 99", "tag 7"} {
		if !containsStr(err.Error(), want) {
			t.Errorf("error %q missing %q", err, want)
		}
	}
}

// TestRecvIntoOverflowBecomesRankError covers the second escape hatch the
// resilience layer closes: an overflowing RecvInto names source and tag in
// a recoverable error.
func TestRecvIntoOverflowBecomesRankError(t *testing.T) {
	w := NewWorld(2)
	err := w.Run(func(r *Rank) {
		if r.ID() == 0 {
			r.Send(1, 9, make([]float64, 8))
		} else {
			var small [2]float64
			r.RecvInto(0, 9, small[:])
		}
	})
	var re *RankError
	if !errors.As(err, &re) || re.Rank != 1 {
		t.Fatalf("err = %v, want RankError on rank 1", err)
	}
	if !containsStr(err.Error(), "tag 9") || !containsStr(err.Error(), "overflows") {
		t.Errorf("error %q should name the tag and the overflow", err)
	}
}

// TestWatchdogTimeout: with a collective deadline installed, a rank waiting
// on a message that never comes fails with ErrCollectiveTimeout instead of
// hanging forever.
func TestWatchdogTimeout(t *testing.T) {
	w := NewWorld(2)
	w.SetCollectiveTimeout(30 * time.Millisecond)
	done := make(chan error, 1)
	go func() {
		done <- w.Run(func(r *Rank) {
			if r.ID() == 0 {
				r.Recv(1, 5) // rank 1 never sends
			}
		})
	}()
	select {
	case err := <-done:
		if !errors.Is(err, ErrCollectiveTimeout) {
			t.Fatalf("err = %v, want ErrCollectiveTimeout", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("watchdog did not fire")
	}
}

// TestWatchdogBarrierTimeout: a rank that never reaches the barrier trips
// the deadline on its peers.
func TestWatchdogBarrierTimeout(t *testing.T) {
	w := NewWorld(3)
	w.SetCollectiveTimeout(30 * time.Millisecond)
	done := make(chan error, 1)
	go func() {
		done <- w.Run(func(r *Rank) {
			if r.ID() != 2 { // rank 2 skips the barrier entirely
				r.Barrier()
			}
		})
	}()
	select {
	case err := <-done:
		if !errors.Is(err, ErrCollectiveTimeout) {
			t.Fatalf("err = %v, want ErrCollectiveTimeout", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("barrier watchdog did not fire")
	}
}

// TestCorruptAndDrop: a corrupted payload arrives as NaNs; a dropped one
// never arrives (surfacing through the watchdog).
func TestCorruptAndDrop(t *testing.T) {
	w := NewWorld(2)
	sched := NewSchedule(1)
	sched.Rules = []Rule{{Action: ActCorrupt, Rank: 0, Op: 1, Tag: -1}}
	w.SetFaultInjector(sched)
	got := make(chan []float64, 1)
	if err := w.Run(func(r *Rank) {
		if r.ID() == 0 {
			r.Send(1, 3, []float64{1, 2, 3})
		} else {
			got <- r.Recv(0, 3)
		}
	}); err != nil {
		t.Fatal(err)
	}
	data := <-got
	for i, v := range data {
		if !math.IsNaN(v) {
			t.Errorf("corrupted payload[%d] = %v, want NaN", i, v)
		}
	}

	w2 := NewWorld(2)
	w2.SetCollectiveTimeout(30 * time.Millisecond)
	drop := NewSchedule(1)
	drop.Rules = []Rule{{Action: ActDrop, Rank: 0, Op: 1, Tag: -1}}
	w2.SetFaultInjector(drop)
	err := w2.Run(func(r *Rank) {
		if r.ID() == 0 {
			r.Send(1, 3, []float64{1})
		} else {
			r.Recv(0, 3)
		}
	})
	if !errors.Is(err, ErrCollectiveTimeout) {
		t.Fatalf("dropped message should time out the receiver, got %v", err)
	}
}

// TestWorldResetAfterFailure: after a recovered failure and Reset, the same
// world runs a clean job to completion.
func TestWorldResetAfterFailure(t *testing.T) {
	w := NewWorld(3)
	sched := NewSchedule(1)
	sched.Rules = []Rule{{Action: ActKill, Rank: 2, Op: 1, Tag: -1}}
	w.SetFaultInjector(sched)
	if err := w.Run(func(r *Rank) { r.Barrier() }); err == nil {
		t.Fatal("expected the injected kill to fail the run")
	}
	w.Reset()
	w.SetFaultInjector(nil)
	got := make(chan float64, 3)
	if err := w.Run(func(r *Rank) { got <- r.AllreduceSum(1) }); err != nil {
		t.Fatalf("world not reusable after Reset: %v", err)
	}
	for i := 0; i < 3; i++ {
		if v := <-got; v != 3 {
			t.Errorf("allreduce after reset = %v, want 3", v)
		}
	}
}

// TestScheduleDeterminism: probabilistic rules draw from seeded per-rank
// streams, so two identical schedules fire identically.
func TestScheduleDeterminism(t *testing.T) {
	fire := func() []bool {
		s := NewSchedule(42)
		s.Rules = []Rule{{Action: ActDrop, Rank: -1, Op: 0, Tag: -1, Prob: 0.2}}
		out := make([]bool, 50)
		for op := 1; op <= 50; op++ {
			out[op-1] = s.OnSend(0, 1, 0, op) == ActDrop
			if out[op-1] {
				s.Reset() // re-arm so later ops can fire again
			}
		}
		return out
	}
	a, b := fire(), fire()
	fired := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("schedules diverge at op %d", i+1)
		}
		if a[i] {
			fired++
		}
	}
	if fired == 0 {
		t.Error("probabilistic rule never fired in 50 ops at p=0.2")
	}
}

// TestParseSpec exercises the -fault-spec grammar.
func TestParseSpec(t *testing.T) {
	s, err := ParseSpec("kill:rank=1,op=40;corrupt:rank=0,op=25,tag=3;drop:prob=0.01,seed=7")
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Rules) != 3 || s.Seed != 7 {
		t.Fatalf("got %d rules seed %d, want 3 rules seed 7", len(s.Rules), s.Seed)
	}
	if s.Rules[0].Action != ActKill || s.Rules[0].Rank != 1 || s.Rules[0].Op != 40 {
		t.Errorf("rule 0 = %+v", s.Rules[0])
	}
	if s.Rules[1].Tag != 3 {
		t.Errorf("rule 1 tag = %d, want 3", s.Rules[1].Tag)
	}
	for _, bad := range []string{"", "explode:rank=1,op=2", "kill:rank=1", "kill:op=x", "kill:prob=2"} {
		if _, err := ParseSpec(bad); err == nil {
			t.Errorf("ParseSpec(%q) accepted invalid spec", bad)
		}
	}
}

func containsStr(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
