package comm

import (
	"math"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestPointToPoint(t *testing.T) {
	w := NewWorld(2)
	w.Run(func(r *Rank) {
		if r.ID() == 0 {
			r.Send(1, 7, []float64{1, 2, 3})
			got := r.Recv(1, 8)
			if len(got) != 1 || got[0] != 42 {
				t.Errorf("rank 0 received %v", got)
			}
		} else {
			got := r.Recv(0, 7)
			if len(got) != 3 || got[2] != 3 {
				t.Errorf("rank 1 received %v", got)
			}
			r.Send(0, 8, []float64{42})
		}
	})
}

func TestSendCopiesPayload(t *testing.T) {
	w := NewWorld(2)
	w.Run(func(r *Rank) {
		if r.ID() == 0 {
			buf := []float64{1, 2, 3}
			r.Send(1, 0, buf)
			buf[0] = 99 // mutate after send: receiver must see the original
			r.Barrier()
		} else {
			r.Barrier()
			got := r.Recv(0, 0)
			if got[0] != 1 {
				t.Errorf("eager send did not copy: got %v", got)
			}
		}
	})
}

func TestTagMatchingAndOrder(t *testing.T) {
	w := NewWorld(2)
	w.Run(func(r *Rank) {
		if r.ID() == 0 {
			r.Send(1, 5, []float64{50})
			r.Send(1, 6, []float64{60})
			r.Send(1, 5, []float64{51})
		} else {
			// Receive out of tag order; same-tag messages keep send order.
			if got := r.Recv(0, 6); got[0] != 60 {
				t.Errorf("tag 6 got %v", got)
			}
			if got := r.Recv(0, 5); got[0] != 50 {
				t.Errorf("tag 5 first got %v", got)
			}
			if got := r.Recv(0, 5); got[0] != 51 {
				t.Errorf("tag 5 second got %v", got)
			}
		}
	})
}

func TestRecvIntoChecksOverflow(t *testing.T) {
	w := NewWorld(2)
	w.Run(func(r *Rank) {
		if r.ID() == 0 {
			r.Send(1, 0, []float64{1, 2, 3, 4})
			return
		}
		defer func() {
			if recover() == nil {
				t.Error("expected panic on overflowing RecvInto")
			}
		}()
		var small [2]float64
		r.RecvInto(0, 0, small[:])
	})
}

func TestBarrierReusable(t *testing.T) {
	const ranks = 5
	w := NewWorld(ranks)
	var counter, violations int64
	var mu sync.Mutex
	w.Run(func(r *Rank) {
		for round := 0; round < 50; round++ {
			mu.Lock()
			counter++
			mu.Unlock()
			r.Barrier()
			mu.Lock()
			if counter != int64(ranks*(round+1)) {
				violations++
			}
			mu.Unlock()
			r.Barrier()
		}
	})
	if violations != 0 {
		t.Errorf("%d barrier violations", violations)
	}
}

func TestAllreduceOps(t *testing.T) {
	w := NewWorld(4)
	w.Run(func(r *Rank) {
		x := float64(r.ID() + 1) // 1..4
		if got := r.Allreduce(x, OpSum); got != 10 {
			t.Errorf("sum = %g", got)
		}
		if got := r.Allreduce(x, OpMin); got != 1 {
			t.Errorf("min = %g", got)
		}
		if got := r.Allreduce(x, OpMax); got != 4 {
			t.Errorf("max = %g", got)
		}
	})
}

func TestAllreduceDeterministicOrder(t *testing.T) {
	// The reduction must combine contributions in rank order on every
	// rank, so all ranks see the bitwise-identical value even when the sum
	// is order-sensitive in floating point.
	w := NewWorld(6)
	vals := []float64{1e16, 1, -1e16, 3.14, 2.71, 1e-8}
	results := make([]float64, 6)
	w.Run(func(r *Rank) {
		for round := 0; round < 10; round++ {
			got := r.AllreduceSum(vals[r.ID()])
			if round == 0 {
				results[r.ID()] = got
			} else if got != results[r.ID()] {
				t.Errorf("rank %d: allreduce changed across rounds", r.ID())
			}
		}
	})
	for i := 1; i < 6; i++ {
		if results[i] != results[0] {
			t.Fatalf("ranks disagree: %v", results)
		}
	}
}

func TestAllreduceVec(t *testing.T) {
	w := NewWorld(3)
	w.Run(func(r *Rank) {
		got := r.AllreduceVec([]float64{1, float64(r.ID()), 10})
		want := []float64{3, 3, 30} // 0+1+2 = 3
		for i := range want {
			if got[i] != want[i] {
				t.Errorf("rank %d: AllreduceVec = %v", r.ID(), got)
				return
			}
		}
	})
}

func TestBcast(t *testing.T) {
	w := NewWorld(4)
	w.Run(func(r *Rank) {
		v := math.NaN()
		if r.ID() == 2 {
			v = 123
		}
		if got := r.Bcast(v, 2); got != 123 {
			t.Errorf("rank %d: bcast got %g", r.ID(), got)
		}
	})
}

func TestSendrecvNoDeadlock(t *testing.T) {
	// A ring exchange where every rank sends before receiving must not
	// deadlock (eager sends).
	const ranks = 8
	w := NewWorld(ranks)
	done := make(chan struct{})
	go func() {
		w.Run(func(r *Rank) {
			right := (r.ID() + 1) % ranks
			left := (r.ID() + ranks - 1) % ranks
			for round := 0; round < 100; round++ {
				got := r.Sendrecv(right, 1, []float64{float64(r.ID())}, left, 1)
				if int(got[0]) != left {
					t.Errorf("rank %d round %d: got %v", r.ID(), round, got)
					return
				}
			}
		})
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("ring exchange deadlocked")
	}
}

func TestDecomposePicksMeshLikeRatio(t *testing.T) {
	cases := []struct {
		ranks, nx, ny int
		wantPX        int
	}{
		{4, 100, 100, 2}, // square mesh -> 2x2
		{8, 400, 100, 4}, // wide mesh (ratio 4) -> 4x2 (ratio 2; |2-4| beats |8-4|)
		{8, 100, 400, 1}, // tall mesh (ratio 0.25) -> 1x8 (ratio 0.125)
		{6, 300, 100, 3}, // 3x2
		{1, 50, 50, 1},   // trivial
		{7, 100, 100, 1}, // prime: 1x7 or 7x1, ratio picks closer
	}
	for _, c := range cases {
		g := Decompose(c.ranks, c.nx, c.ny)
		if g.Size() != c.ranks {
			t.Errorf("Decompose(%d): %dx%d does not multiply out", c.ranks, g.PX, g.PY)
		}
		if c.wantPX != 0 && g.PX != c.wantPX && c.ranks != 7 {
			t.Errorf("Decompose(%d ranks, %dx%d mesh) = %dx%d, want PX=%d",
				c.ranks, c.nx, c.ny, g.PX, g.PY, c.wantPX)
		}
	}
}

// TestChunksPartitionMesh (property): for any world size and mesh, the
// chunks must tile the mesh exactly and neighbour links must be mutual.
func TestChunksPartitionMesh(t *testing.T) {
	f := func(ranksU, nxU, nyU uint8) bool {
		ranks := 1 + int(ranksU)%16
		nx := ranks + int(nxU)%64
		ny := ranks + int(nyU)%64
		g := Decompose(ranks, nx, ny)
		covered := make([][]int, ny)
		for j := range covered {
			covered[j] = make([]int, nx)
			for i := range covered[j] {
				covered[j][i] = -1
			}
		}
		chunks := make([]Chunk, ranks)
		for rank := 0; rank < ranks; rank++ {
			ch := g.ChunkOf(rank, nx, ny)
			chunks[rank] = ch
			if ch.NX <= 0 || ch.NY <= 0 {
				return false
			}
			for j := ch.Y0; j < ch.Y0+ch.NY; j++ {
				for i := ch.X0; i < ch.X0+ch.NX; i++ {
					if covered[j][i] != -1 {
						return false // overlap
					}
					covered[j][i] = rank
				}
			}
		}
		for j := range covered {
			for i := range covered[j] {
				if covered[j][i] == -1 {
					return false // gap
				}
			}
		}
		// Mutual neighbour links.
		for rank, ch := range chunks {
			if ch.Left >= 0 && chunks[ch.Left].Right != rank {
				return false
			}
			if ch.Right >= 0 && chunks[ch.Right].Left != rank {
				return false
			}
			if ch.Down >= 0 && chunks[ch.Down].Up != rank {
				return false
			}
			if ch.Up >= 0 && chunks[ch.Up].Down != rank {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func BenchmarkHaloRing(b *testing.B) {
	const ranks = 4
	w := NewWorld(ranks)
	payload := make([]float64, 1000)
	b.ResetTimer()
	w.Run(func(r *Rank) {
		right := (r.ID() + 1) % ranks
		left := (r.ID() + ranks - 1) % ranks
		for i := 0; i < b.N; i++ {
			r.Sendrecv(right, 1, payload, left, 1)
		}
	})
}

func BenchmarkAllreduce(b *testing.B) {
	const ranks = 4
	w := NewWorld(ranks)
	b.ResetTimer()
	w.Run(func(r *Rank) {
		for i := 0; i < b.N; i++ {
			r.AllreduceSum(float64(i))
		}
	})
}
