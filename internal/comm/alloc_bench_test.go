package comm

import "testing"

// The benchmarks below pin the zero-allocation contract of the runtime's
// steady state: once the payload free list is primed (a handful of warm-up
// exchanges), Send draws every copy buffer from the pool and RecvInto
// recycles consumed payloads, so a halo-exchange-shaped traffic pattern
// performs no heap allocation per operation. Run with -benchmem; the
// acceptance criterion is 0 allocs/op.

// BenchmarkHaloExchangeSteadyState models one field's halo swap between two
// neighbouring ranks: both sides post eager sends, then receive into
// reusable buffers — exactly the Send/RecvInto shape the MPI-style ports
// use in exchangeField.
func BenchmarkHaloExchangeSteadyState(b *testing.B) {
	const stripLen = 512 // a 256-row column strip at depth 2
	w := NewWorld(2)
	exchange := func(r *Rank, peer int, pack, recv []float64, iters int) {
		for i := 0; i < iters; i++ {
			r.Send(peer, 1, pack)
			r.RecvInto(peer, 1, recv)
		}
	}
	// Prime the free list outside the measured region.
	w.Run(func(r *Rank) {
		pack := make([]float64, stripLen)
		recv := make([]float64, stripLen)
		exchange(r, 1-r.ID(), pack, recv, 4)
	})
	b.ReportAllocs()
	b.ResetTimer()
	w.Run(func(r *Rank) {
		pack := make([]float64, stripLen)
		recv := make([]float64, stripLen)
		exchange(r, 1-r.ID(), pack, recv, b.N)
	})
}

// BenchmarkAllreduceVecInPlace pins the allocation-free multi-scalar
// reduction used by the field summary.
func BenchmarkAllreduceVecInPlace(b *testing.B) {
	const ranks = 4
	w := NewWorld(ranks)
	b.ReportAllocs()
	b.ResetTimer()
	w.Run(func(r *Rank) {
		var buf [4]float64
		for i := 0; i < b.N; i++ {
			buf = [4]float64{1, float64(r.ID()), float64(i), 10}
			r.AllreduceVecInPlace(buf[:])
		}
	})
}

// BenchmarkSocketHaloExchangeSteadyState is the halo-swap benchmark over the
// loopback socket transport: the wire path (framing into a per-link scratch
// buffer, pooled payload delivery, ack-driven buffer recycling) must stay
// allocation-pooled in steady state just like the in-process path — no
// per-operation payload or frame allocations. The guarded number is bytes
// per op: single-digit B/op means every 4KiB payload buffer came from the
// pool. (A residual couple of tiny allocs/op is goroutine-parking overhead:
// wire delivery is asynchronous, so receivers genuinely block, which the
// in-process benchmark's send/recv alternation never does.)
func BenchmarkSocketHaloExchangeSteadyState(b *testing.B) {
	const stripLen = 512
	w, err := NewSocketWorld(2, SocketOptions{})
	if err != nil {
		b.Fatal(err)
	}
	defer w.Close()
	exchange := func(r *Rank, peer int, pack, recv []float64, iters int) {
		for i := 0; i < iters; i++ {
			r.Send(peer, 1, pack)
			r.RecvInto(peer, 1, recv)
		}
	}
	// Prime the free list, the link scratch buffers and the retain queues
	// outside the measured region.
	w.Run(func(r *Rank) {
		pack := make([]float64, stripLen)
		recv := make([]float64, stripLen)
		exchange(r, 1-r.ID(), pack, recv, 16)
	})
	b.ReportAllocs()
	b.ResetTimer()
	w.Run(func(r *Rank) {
		pack := make([]float64, stripLen)
		recv := make([]float64, stripLen)
		exchange(r, 1-r.ID(), pack, recv, b.N)
	})
}

// BenchmarkSocketAllreduce pins the distributed scalar reduction's steady
// state: gather-to-root and release frames all reuse pooled buffers.
func BenchmarkSocketAllreduce(b *testing.B) {
	w, err := NewSocketWorld(4, SocketOptions{})
	if err != nil {
		b.Fatal(err)
	}
	defer w.Close()
	w.Run(func(r *Rank) {
		for i := 0; i < 16; i++ {
			r.AllreduceSum(float64(r.ID() + i))
		}
	})
	b.ReportAllocs()
	b.ResetTimer()
	w.Run(func(r *Rank) {
		for i := 0; i < b.N; i++ {
			r.AllreduceSum(float64(r.ID() + i))
		}
	})
}
