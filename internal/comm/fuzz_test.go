package comm

import (
	"strings"
	"testing"
)

// FuzzParseSpec drives the fault-spec parser with arbitrary input, mirroring
// config.FuzzParseReader: the parser consumes untrusted CLI bytes, so it must
// never panic, every schedule it accepts must be well-formed (actions known,
// bits in 0..63, probabilities in [0,1], every rule armed by op or prob), and
// an accepted schedule must survive the Spec() serialisation round-trip —
// ParseSpec(s.Spec()).Spec() == s.Spec() is what makes a logged schedule
// replayable.
func FuzzParseSpec(f *testing.F) {
	for _, seed := range []string{
		"kill:rank=1,op=40",
		"corrupt:rank=0,op=25;drop:prob=0.01,seed=7",
		"flip:rank=1,op=30,bit=12",
		"flip:op=7,idx=3,sticky=1",
		"delay:prob=0.5,seed=-3;stall:rank=2,op=9,tag=4",
		"flip:op=1,bit=63,sticky=true",
		"drop:tag=0,op=1",
		";;;",
		"flip:bit=52",
		"flip:op=0",
		"nan:op=2",
		"flip:op=1,bit=64",
		"kill:op=1,sticky=1",
		"flip:op=1,prob=2",
	} {
		f.Add(seed)
	}

	f.Fuzz(func(t *testing.T, input string) {
		s, err := ParseSpec(input)
		if err != nil {
			return
		}
		if len(s.Rules) == 0 {
			t.Fatalf("accepted spec produced no rules:\n%s", input)
		}
		for i, r := range s.Rules {
			if r.Action < ActDrop || r.Action > ActFlip {
				t.Fatalf("rule %d has unknown action %v:\n%s", i, r.Action, input)
			}
			if strings.HasPrefix(r.Action.String(), "Action(") {
				t.Fatalf("rule %d action %d has no name:\n%s", i, int(r.Action), input)
			}
			if r.Bit < 0 || r.Bit > 63 {
				t.Fatalf("rule %d bit %d out of range:\n%s", i, r.Bit, input)
			}
			if r.Prob < 0 || r.Prob > 1 {
				t.Fatalf("rule %d prob %v out of range:\n%s", i, r.Prob, input)
			}
			if r.Op <= 0 && r.Prob <= 0 {
				t.Fatalf("rule %d is unarmed (no op, no prob):\n%s", i, input)
			}
			if r.Idx < 0 {
				t.Fatalf("rule %d idx %d negative:\n%s", i, r.Idx, input)
			}
		}
		spec := s.Spec()
		s2, err := ParseSpec(spec)
		if err != nil {
			t.Fatalf("canonical spec %q rejected (%v), original:\n%s", spec, err, input)
		}
		if s2.Spec() != spec {
			t.Fatalf("round trip diverged: %q -> %q, original:\n%s", spec, s2.Spec(), input)
		}
	})
}
