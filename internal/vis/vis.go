// Package vis writes simulation state as legacy-VTK structured-points
// files, the analogue of the mini-app's visit output (tea_visit): cell
// data over the uniform mesh, loadable by ParaView/VisIt. Files are plain
// ASCII VTK 2.0, the most portable dialect.
package vis

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"sort"

	"github.com/warwick-hpsc/tealeaf-go/internal/grid"
)

// Field is one named cell-data scalar array in row-major interior order
// (nx*ny values, row 0 first).
type Field struct {
	Name string
	Data []float64
}

// Write emits a legacy VTK STRUCTURED_POINTS dataset with the given cell
// fields. Every field must have exactly m.Nx*m.Ny values.
func Write(w io.Writer, m *grid.Mesh, fields []Field) error {
	if len(fields) == 0 {
		return fmt.Errorf("vis: no fields to write")
	}
	cells := m.Nx * m.Ny
	for _, f := range fields {
		if len(f.Data) != cells {
			return fmt.Errorf("vis: field %q has %d values, mesh has %d cells", f.Name, len(f.Data), cells)
		}
		if f.Name == "" {
			return fmt.Errorf("vis: field with empty name")
		}
	}
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "# vtk DataFile Version 2.0")
	fmt.Fprintln(bw, "TeaLeaf-Go field output")
	fmt.Fprintln(bw, "ASCII")
	fmt.Fprintln(bw, "DATASET STRUCTURED_POINTS")
	// VTK dimensions are point counts; cells are (dims-1) per axis.
	fmt.Fprintf(bw, "DIMENSIONS %d %d 1\n", m.Nx+1, m.Ny+1)
	fmt.Fprintf(bw, "ORIGIN %g %g 0\n", m.XMin, m.YMin)
	fmt.Fprintf(bw, "SPACING %g %g 1\n", m.Dx, m.Dy)
	fmt.Fprintf(bw, "CELL_DATA %d\n", cells)
	for _, f := range fields {
		fmt.Fprintf(bw, "SCALARS %s double 1\n", f.Name)
		fmt.Fprintln(bw, "LOOKUP_TABLE default")
		for j := 0; j < m.Ny; j++ {
			row := f.Data[j*m.Nx : (j+1)*m.Nx]
			for i, v := range row {
				if i > 0 {
					bw.WriteByte(' ')
				}
				fmt.Fprintf(bw, "%.12g", v)
			}
			bw.WriteByte('\n')
		}
	}
	return bw.Flush()
}

// WriteFile is Write to a new file at path.
func WriteFile(path string, m *grid.Mesh, fields []Field) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("vis: %w", err)
	}
	defer f.Close()
	if err := Write(f, m, fields); err != nil {
		return err
	}
	return f.Close()
}

// SortFields orders fields by name for deterministic output when callers
// assemble them from a map.
func SortFields(fields []Field) {
	sort.Slice(fields, func(i, j int) bool { return fields[i].Name < fields[j].Name })
}
