package vis

import (
	"bufio"
	"strconv"
	"strings"
	"testing"

	"github.com/warwick-hpsc/tealeaf-go/internal/grid"
)

func mesh(t *testing.T) *grid.Mesh {
	t.Helper()
	m, err := grid.NewMesh(0, 4, 0, 3, 4, 3)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestWriteHeaderAndValues(t *testing.T) {
	m := mesh(t)
	data := make([]float64, 12)
	for i := range data {
		data[i] = float64(i) * 0.5
	}
	var b strings.Builder
	if err := Write(&b, m, []Field{{Name: "temperature", Data: data}}); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# vtk DataFile Version 2.0",
		"ASCII",
		"DATASET STRUCTURED_POINTS",
		"DIMENSIONS 5 4 1",
		"ORIGIN 0 0 0",
		"SPACING 1 1 1",
		"CELL_DATA 12",
		"SCALARS temperature double 1",
		"LOOKUP_TABLE default",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	// All 12 values present in order.
	var got []float64
	sc := bufio.NewScanner(strings.NewReader(out))
	inData := false
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "LOOKUP_TABLE") {
			inData = true
			continue
		}
		if !inData {
			continue
		}
		for _, tok := range strings.Fields(line) {
			v, err := strconv.ParseFloat(tok, 64)
			if err != nil {
				t.Fatalf("bad value %q", tok)
			}
			got = append(got, v)
		}
	}
	if len(got) != 12 {
		t.Fatalf("parsed %d values, want 12", len(got))
	}
	for i, v := range got {
		if v != data[i] {
			t.Errorf("value %d = %g, want %g", i, v, data[i])
		}
	}
}

func TestWriteMultipleFields(t *testing.T) {
	m := mesh(t)
	f := []Field{
		{Name: "density", Data: make([]float64, 12)},
		{Name: "energy", Data: make([]float64, 12)},
	}
	var b strings.Builder
	if err := Write(&b, m, f); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if strings.Count(out, "SCALARS") != 2 {
		t.Errorf("expected 2 scalar sections:\n%s", out)
	}
}

func TestWriteErrors(t *testing.T) {
	m := mesh(t)
	var b strings.Builder
	if err := Write(&b, m, nil); err == nil {
		t.Error("expected error for no fields")
	}
	if err := Write(&b, m, []Field{{Name: "x", Data: make([]float64, 5)}}); err == nil {
		t.Error("expected error for wrong field size")
	}
	if err := Write(&b, m, []Field{{Name: "", Data: make([]float64, 12)}}); err == nil {
		t.Error("expected error for empty name")
	}
}

func TestSortFields(t *testing.T) {
	f := []Field{{Name: "z"}, {Name: "a"}, {Name: "m"}}
	SortFields(f)
	if f[0].Name != "a" || f[2].Name != "z" {
		t.Errorf("sort order: %v %v %v", f[0].Name, f[1].Name, f[2].Name)
	}
}

func TestWriteFile(t *testing.T) {
	m := mesh(t)
	path := t.TempDir() + "/out.vtk"
	if err := WriteFile(path, m, []Field{{Name: "u", Data: make([]float64, 12)}}); err != nil {
		t.Fatal(err)
	}
}
