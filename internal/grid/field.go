// Package grid provides the structured-mesh substrate used by every TeaLeaf
// port: cell-centred 2D fields with halo (ghost) layers stored in flat,
// row-major slices, plus the mesh geometry (cell sizes and coordinates).
//
// Conventions follow the original TeaLeaf mini-app: the interior cells of a
// field are addressed (1..Nx, 1..Ny) in the Fortran version; here they are
// addressed (0..Nx-1, 0..Ny-1) and the halo extends Depth cells beyond the
// interior on every side, so valid indices are (-Depth..Nx+Depth-1).
package grid

import "fmt"

// DefaultHalo is the halo depth used by TeaLeaf. The deepest stencil access
// in any kernel (PPCG steps and the matrix-free operator applied inside halo
// cells) needs two ghost layers.
const DefaultHalo = 2

// Field is a 2D cell-centred scalar field with a halo of ghost cells.
//
// Data is stored row-major: rows are contiguous in x, so iterating j in the
// outer loop and i in the inner loop walks memory linearly, matching how the
// reference mini-app (and every cache-aware port of it) orders its loops.
type Field struct {
	Nx, Ny int // interior extent in cells
	Depth  int // halo depth on each side
	Stride int // row stride = Nx + 2*Depth
	Data   []float64
}

// NewField allocates a zeroed field with the given interior extent and halo
// depth. It panics on non-positive extents: a zero-size field is always a
// programming error in this code base.
func NewField(nx, ny, depth int) *Field {
	if nx <= 0 || ny <= 0 {
		panic(fmt.Sprintf("grid: invalid field extent %dx%d", nx, ny))
	}
	if depth < 0 {
		panic(fmt.Sprintf("grid: negative halo depth %d", depth))
	}
	stride := nx + 2*depth
	return &Field{
		Nx:     nx,
		Ny:     ny,
		Depth:  depth,
		Stride: stride,
		Data:   make([]float64, stride*(ny+2*depth)),
	}
}

// New allocates a field with the default TeaLeaf halo depth of 2.
func New(nx, ny int) *Field { return NewField(nx, ny, DefaultHalo) }

// Idx returns the flat index of cell (i, j). Interior cells are
// (0..Nx-1, 0..Ny-1); halo cells use negative indices or indices >= the
// extent, down to -Depth and up to Nx+Depth-1.
func (f *Field) Idx(i, j int) int {
	return (j+f.Depth)*f.Stride + (i + f.Depth)
}

// At returns the value of cell (i, j).
func (f *Field) At(i, j int) float64 { return f.Data[f.Idx(i, j)] }

// Set assigns the value of cell (i, j).
func (f *Field) Set(i, j int, v float64) { f.Data[f.Idx(i, j)] = v }

// Add adds v to cell (i, j).
func (f *Field) Add(i, j int, v float64) { f.Data[f.Idx(i, j)] += v }

// Row returns the slice of a full row j spanning [-Depth, Nx+Depth).
// Mutating the returned slice mutates the field.
func (f *Field) Row(j int) []float64 {
	start := (j + f.Depth) * f.Stride
	return f.Data[start : start+f.Stride]
}

// InteriorRow returns the slice of row j restricted to interior columns
// [0, Nx). Mutating the returned slice mutates the field.
func (f *Field) InteriorRow(j int) []float64 {
	start := f.Idx(0, j)
	return f.Data[start : start+f.Nx]
}

// Fill sets every cell, halo included, to v.
func (f *Field) Fill(v float64) {
	for i := range f.Data {
		f.Data[i] = v
	}
}

// Zero clears every cell, halo included.
func (f *Field) Zero() {
	clear(f.Data)
}

// CopyFrom copies src into f. The fields must have identical shape.
func (f *Field) CopyFrom(src *Field) {
	if f.Nx != src.Nx || f.Ny != src.Ny || f.Depth != src.Depth {
		panic(fmt.Sprintf("grid: CopyFrom shape mismatch: %dx%d/%d vs %dx%d/%d",
			f.Nx, f.Ny, f.Depth, src.Nx, src.Ny, src.Depth))
	}
	copy(f.Data, src.Data)
}

// Clone returns a deep copy of f.
func (f *Field) Clone() *Field {
	g := NewField(f.Nx, f.Ny, f.Depth)
	copy(g.Data, f.Data)
	return g
}

// SameShape reports whether two fields have identical extent and halo depth.
func (f *Field) SameShape(g *Field) bool {
	return f.Nx == g.Nx && f.Ny == g.Ny && f.Depth == g.Depth
}

// TotalCells returns the number of allocated cells including the halo.
func (f *Field) TotalCells() int { return len(f.Data) }

// InteriorSum returns the sum of all interior cells. It is used by tests and
// diagnostics, not by performance-critical kernels.
func (f *Field) InteriorSum() float64 {
	var s float64
	for j := 0; j < f.Ny; j++ {
		for _, v := range f.InteriorRow(j) {
			s += v
		}
	}
	return s
}

// MaxAbsDiff returns the largest absolute difference between interior cells
// of f and g. The fields must have the same interior extent (halo depths may
// differ).
func (f *Field) MaxAbsDiff(g *Field) float64 {
	if f.Nx != g.Nx || f.Ny != g.Ny {
		panic("grid: MaxAbsDiff extent mismatch")
	}
	var m float64
	for j := 0; j < f.Ny; j++ {
		fr, gr := f.InteriorRow(j), g.InteriorRow(j)
		for i := range fr {
			d := fr[i] - gr[i]
			if d < 0 {
				d = -d
			}
			if d > m {
				m = d
			}
		}
	}
	return m
}

// Range describes a rectangular iteration space over cells,
// inclusive of From and exclusive of To, in each dimension.
type Range struct {
	FromX, ToX int
	FromY, ToY int
}

// Interior returns the iteration range covering the interior cells.
func (f *Field) Interior() Range {
	return Range{FromX: 0, ToX: f.Nx, FromY: 0, ToY: f.Ny}
}

// Expand grows the range by d cells on every side.
func (r Range) Expand(d int) Range {
	return Range{FromX: r.FromX - d, ToX: r.ToX + d, FromY: r.FromY - d, ToY: r.ToY + d}
}

// Cells returns the number of cells in the range (0 if empty).
func (r Range) Cells() int {
	w, h := r.ToX-r.FromX, r.ToY-r.FromY
	if w <= 0 || h <= 0 {
		return 0
	}
	return w * h
}

// Intersect returns the overlap of two ranges (possibly empty).
func (r Range) Intersect(o Range) Range {
	return Range{
		FromX: max(r.FromX, o.FromX), ToX: min(r.ToX, o.ToX),
		FromY: max(r.FromY, o.FromY), ToY: min(r.ToY, o.ToY),
	}
}

// Empty reports whether the range contains no cells.
func (r Range) Empty() bool { return r.Cells() == 0 }

func (r Range) String() string {
	return fmt.Sprintf("[%d,%d)x[%d,%d)", r.FromX, r.ToX, r.FromY, r.ToY)
}
