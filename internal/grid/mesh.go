package grid

import "fmt"

// Mesh describes the uniform structured mesh of a TeaLeaf problem: the
// physical extent of the domain, the number of cells in each dimension and
// the derived cell geometry. TeaLeaf meshes are uniform rectangles, so the
// per-cell spacing is constant; coordinate lookups are computed, not stored.
type Mesh struct {
	XMin, XMax float64 // physical domain extent in x
	YMin, YMax float64 // physical domain extent in y
	Nx, Ny     int     // interior cells in x and y
	Dx, Dy     float64 // cell sizes
}

// NewMesh constructs a mesh over [xmin,xmax]x[ymin,ymax] with nx-by-ny cells.
func NewMesh(xmin, xmax, ymin, ymax float64, nx, ny int) (*Mesh, error) {
	if nx <= 0 || ny <= 0 {
		return nil, fmt.Errorf("grid: mesh must have positive cell counts, got %dx%d", nx, ny)
	}
	if xmax <= xmin || ymax <= ymin {
		return nil, fmt.Errorf("grid: mesh extent is empty: x [%g,%g], y [%g,%g]", xmin, xmax, ymin, ymax)
	}
	return &Mesh{
		XMin: xmin, XMax: xmax, YMin: ymin, YMax: ymax,
		Nx: nx, Ny: ny,
		Dx: (xmax - xmin) / float64(nx),
		Dy: (ymax - ymin) / float64(ny),
	}, nil
}

// CellX returns the x coordinate of the centre of cell column i
// (interior columns are 0..Nx-1; halo columns extrapolate linearly).
func (m *Mesh) CellX(i int) float64 { return m.XMin + m.Dx*(float64(i)+0.5) }

// CellY returns the y coordinate of the centre of cell row j.
func (m *Mesh) CellY(j int) float64 { return m.YMin + m.Dy*(float64(j)+0.5) }

// VertexX returns the x coordinate of vertex i (the left face of column i).
func (m *Mesh) VertexX(i int) float64 { return m.XMin + m.Dx*float64(i) }

// VertexY returns the y coordinate of vertex j (the bottom face of row j).
func (m *Mesh) VertexY(j int) float64 { return m.YMin + m.Dy*float64(j) }

// CellVolume returns the area (2D volume) of one cell.
func (m *Mesh) CellVolume() float64 { return m.Dx * m.Dy }

// Sub returns the mesh geometry restricted to a rectangular block of cells
// [x0,x0+nx) x [y0,y0+ny), used by distributed-memory decompositions: the
// sub-mesh has the same spacing and the correct physical offsets so that
// state generation on a sub-domain places materials identically to a
// single-domain run.
func (m *Mesh) Sub(x0, y0, nx, ny int) *Mesh {
	return &Mesh{
		XMin: m.XMin + m.Dx*float64(x0),
		XMax: m.XMin + m.Dx*float64(x0+nx),
		YMin: m.YMin + m.Dy*float64(y0),
		YMax: m.YMin + m.Dy*float64(y0+ny),
		Nx:   nx, Ny: ny,
		Dx: m.Dx, Dy: m.Dy,
	}
}

func (m *Mesh) String() string {
	return fmt.Sprintf("mesh %dx%d over [%g,%g]x[%g,%g] (dx=%g dy=%g)",
		m.Nx, m.Ny, m.XMin, m.XMax, m.YMin, m.YMax, m.Dx, m.Dy)
}
