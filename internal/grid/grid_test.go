package grid

import (
	"math"
	"testing"
	"testing/quick"
)

func TestFieldIndexing(t *testing.T) {
	f := New(5, 3)
	if f.Stride != 9 {
		t.Fatalf("stride = %d, want 9", f.Stride)
	}
	if got, want := len(f.Data), 9*7; got != want {
		t.Fatalf("allocation = %d cells, want %d", got, want)
	}
	// Idx must be a bijection over the padded extent.
	seen := map[int]bool{}
	for j := -2; j < 5; j++ {
		for i := -2; i < 7; i++ {
			at := f.Idx(i, j)
			if at < 0 || at >= len(f.Data) {
				t.Fatalf("Idx(%d,%d) = %d out of range", i, j, at)
			}
			if seen[at] {
				t.Fatalf("Idx(%d,%d) = %d collides", i, j, at)
			}
			seen[at] = true
		}
	}
	f.Set(-2, -2, 1)
	f.Set(6, 4, 2)
	if f.Data[0] != 1 || f.Data[len(f.Data)-1] != 2 {
		t.Error("corner cells do not map to the slice ends")
	}
}

func TestRowSlices(t *testing.T) {
	f := New(4, 2)
	f.Set(0, 1, 7)
	f.Set(-2, 1, 5)
	row := f.Row(1)
	if len(row) != f.Stride {
		t.Fatalf("Row length %d, want %d", len(row), f.Stride)
	}
	if row[0] != 5 || row[2] != 7 {
		t.Errorf("Row(1) = %v, want halo at [0] and interior at [2]", row)
	}
	ir := f.InteriorRow(1)
	if len(ir) != 4 || ir[0] != 7 {
		t.Errorf("InteriorRow(1) = %v", ir)
	}
	ir[3] = 9
	if f.At(3, 1) != 9 {
		t.Error("InteriorRow must alias the field storage")
	}
}

func TestFieldCopyCloneDiff(t *testing.T) {
	a := New(6, 4)
	for j := -2; j < 6; j++ {
		for i := -2; i < 8; i++ {
			a.Set(i, j, float64(i*10+j))
		}
	}
	b := a.Clone()
	if d := a.MaxAbsDiff(b); d != 0 {
		t.Errorf("clone differs by %g", d)
	}
	b.Set(2, 2, 1e9)
	if d := a.MaxAbsDiff(b); math.Abs(d-(1e9-22)) > 1 {
		t.Errorf("MaxAbsDiff = %g", d)
	}
	c := New(6, 4)
	c.CopyFrom(a)
	if d := a.MaxAbsDiff(c); d != 0 {
		t.Errorf("CopyFrom differs by %g", d)
	}
}

func TestFieldPanics(t *testing.T) {
	mustPanic(t, "zero extent", func() { NewField(0, 3, 2) })
	mustPanic(t, "negative halo", func() { NewField(2, 2, -1) })
	mustPanic(t, "shape mismatch", func() {
		a, b := New(2, 2), New(3, 2)
		a.CopyFrom(b)
	})
}

func mustPanic(t *testing.T, name string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s: expected panic", name)
		}
	}()
	fn()
}

func TestRangeOps(t *testing.T) {
	r := Range{FromX: 0, ToX: 4, FromY: 1, ToY: 3}
	if r.Cells() != 8 {
		t.Errorf("Cells = %d, want 8", r.Cells())
	}
	if got := r.Expand(1); got.Cells() != 6*4 {
		t.Errorf("Expand(1).Cells = %d, want 24", got.Cells())
	}
	inter := r.Intersect(Range{FromX: 2, ToX: 10, FromY: 0, ToY: 2})
	if inter != (Range{FromX: 2, ToX: 4, FromY: 1, ToY: 2}) {
		t.Errorf("Intersect = %+v", inter)
	}
	empty := r.Intersect(Range{FromX: 5, ToX: 9, FromY: 0, ToY: 9})
	if !empty.Empty() || empty.Cells() != 0 {
		t.Errorf("expected empty intersection, got %+v", empty)
	}
}

// TestRangeIntersectProperty: intersection is commutative and never larger
// than either operand (quick-check).
func TestRangeIntersectProperty(t *testing.T) {
	f := func(a0, a1, b0, b1, c0, c1, d0, d1 int8) bool {
		r1 := Range{FromX: int(a0), ToX: int(a1), FromY: int(b0), ToY: int(b1)}
		r2 := Range{FromX: int(c0), ToX: int(c1), FromY: int(d0), ToY: int(d1)}
		i1 := r1.Intersect(r2)
		i2 := r2.Intersect(r1)
		if i1 != i2 {
			return false
		}
		return i1.Cells() <= max(r1.Cells(), 0) || r1.Cells() == 0 ||
			i1.Cells() <= r1.Cells()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMeshGeometry(t *testing.T) {
	m, err := NewMesh(0, 10, 0, 2, 10, 2)
	if err != nil {
		t.Fatal(err)
	}
	if m.Dx != 1 || m.Dy != 1 {
		t.Fatalf("dx,dy = %g,%g", m.Dx, m.Dy)
	}
	if m.CellX(0) != 0.5 || m.CellY(1) != 1.5 {
		t.Errorf("cell centres wrong: %g, %g", m.CellX(0), m.CellY(1))
	}
	if m.VertexX(10) != 10 {
		t.Errorf("VertexX(10) = %g", m.VertexX(10))
	}
	if m.CellVolume() != 1 {
		t.Errorf("CellVolume = %g", m.CellVolume())
	}
}

func TestMeshErrors(t *testing.T) {
	if _, err := NewMesh(0, 10, 0, 10, 0, 5); err == nil {
		t.Error("expected error for zero cells")
	}
	if _, err := NewMesh(5, 5, 0, 10, 3, 3); err == nil {
		t.Error("expected error for empty extent")
	}
}

// TestSubMeshProperty: a sub-mesh's cell centres must coincide with the
// parent's at the offset position, for any valid offset (quick-check) —
// the property distributed state generation relies on.
func TestSubMeshProperty(t *testing.T) {
	parent, err := NewMesh(-3, 7, 2, 12, 40, 50)
	if err != nil {
		t.Fatal(err)
	}
	f := func(x0u, y0u, nxu, nyu uint8) bool {
		x0 := int(x0u) % 30
		y0 := int(y0u) % 40
		nx := 1 + int(nxu)%(40-x0)
		ny := 1 + int(nyu)%(50-y0)
		sub := parent.Sub(x0, y0, nx, ny)
		for _, probe := range [][2]int{{0, 0}, {nx - 1, ny - 1}, {nx / 2, ny / 2}} {
			i, j := probe[0], probe[1]
			if math.Abs(sub.CellX(i)-parent.CellX(x0+i)) > 1e-12 {
				return false
			}
			if math.Abs(sub.CellY(j)-parent.CellY(y0+j)) > 1e-12 {
				return false
			}
		}
		return sub.Dx == parent.Dx && sub.Dy == parent.Dy
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestInteriorSum(t *testing.T) {
	f := New(3, 3)
	f.Fill(2) // fills halo too
	if got := f.InteriorSum(); got != 18 {
		t.Errorf("InteriorSum = %g, want 18 (halo must not count)", got)
	}
}

// TestRowAliasesData: Row and InteriorRow must be views, not copies, and
// MaxAbsDiff must ignore halo contents.
func TestMaxAbsDiffIgnoresHalo(t *testing.T) {
	a := New(3, 3)
	b := New(3, 3)
	a.Set(-2, -2, 99) // halo-only difference
	if d := a.MaxAbsDiff(b); d != 0 {
		t.Errorf("halo difference leaked into MaxAbsDiff: %g", d)
	}
	mustPanic(t, "extent mismatch", func() { a.MaxAbsDiff(New(4, 3)) })
}

// TestZeroAndFill cover the bulk initialisation paths.
func TestZeroAndFill(t *testing.T) {
	f := New(4, 4)
	f.Fill(3)
	if f.At(-2, -2) != 3 || f.At(5, 5) != 3 {
		t.Error("Fill must cover the halo")
	}
	f.Zero()
	for _, v := range f.Data {
		if v != 0 {
			t.Fatal("Zero left data behind")
		}
	}
}

// TestSameShape covers the shape comparison helper.
func TestSameShape(t *testing.T) {
	if !New(3, 4).SameShape(New(3, 4)) {
		t.Error("identical shapes reported different")
	}
	if New(3, 4).SameShape(New(4, 3)) {
		t.Error("different shapes reported same")
	}
	if New(3, 4).SameShape(NewField(3, 4, 1)) {
		t.Error("different halos reported same")
	}
}

// TestTotalCellsAndString exercise the remaining accessors.
func TestTotalCellsAndString(t *testing.T) {
	f := New(3, 2)
	if f.TotalCells() != 7*6 {
		t.Errorf("TotalCells = %d", f.TotalCells())
	}
	r := Range{FromX: 0, ToX: 3, FromY: 1, ToY: 2}
	if r.String() != "[0,3)x[1,2)" {
		t.Errorf("Range.String = %q", r.String())
	}
	m, _ := NewMesh(0, 3, 0, 2, 3, 2)
	if m.String() == "" {
		t.Error("Mesh.String empty")
	}
}
