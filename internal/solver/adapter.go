package solver

import (
	"context"

	"github.com/warwick-hpsc/tealeaf-go/internal/driver"
)

// New wraps the solve options as a driver.Solver for use with driver.Run.
func New(opt Options) driver.Solver {
	return driver.SolverFunc(func(ctx context.Context, k driver.Kernels) (driver.SolveStats, error) {
		st, err := SolveCtx(ctx, k, opt)
		return driver.SolveStats{
			Iterations:      st.Iterations,
			InnerIterations: st.InnerIterations,
			HaloExchanges:   st.HaloExchanges,
			Error:           st.Error,
			InitialError:    st.InitialError,
			Converged:       st.Converged,
			EigMin:          st.EigMin,
			EigMax:          st.EigMax,
			EstChebyIters:   st.EstChebyIters,
			Restarts:        st.Restarts,
			Fallbacks:       st.Fallbacks,
			SDCChecks:       st.SDCChecks,
		}, err
	})
}
