package solver

import (
	"fmt"
	"math"
)

// EstimateEigenvalues bounds the spectrum of the (possibly preconditioned)
// conduction operator from the scalars of a conjugate-gradient run, the way
// the mini-app bootstraps its Chebyshev and PPCG solvers: the CG
// coefficients alpha_k and beta_k define the Lanczos tridiagonal matrix
//
//	T[k][k]   = 1/alpha_k + beta_{k-1}/alpha_{k-1}   (beta_{-1} = 0)
//	T[k][k+1] = sqrt(beta_k)/alpha_k
//
// whose extremal eigenvalues converge to those of the operator. The
// returned bounds are widened by the same safety factors the mini-app uses
// so that Chebyshev's interval always encloses the true spectrum.
func EstimateEigenvalues(alphas, betas []float64) (eigMin, eigMax float64, err error) {
	n := len(alphas)
	if n < 2 {
		return 0, 0, fmt.Errorf("solver: need at least 2 CG iterations to estimate eigenvalues, have %d", n)
	}
	if len(betas) < n {
		return 0, 0, fmt.Errorf("solver: have %d alphas but only %d betas", n, len(betas))
	}
	diag := make([]float64, n)
	off := make([]float64, n) // off[i] couples i and i+1; off[n-1] unused
	for k := 0; k < n; k++ {
		if alphas[k] == 0 {
			return 0, 0, fmt.Errorf("solver: zero CG alpha at iteration %d", k)
		}
		diag[k] = 1 / alphas[k]
		if k > 0 {
			diag[k] += betas[k-1] / alphas[k-1]
		}
		if k < n-1 {
			if betas[k] < 0 {
				return 0, 0, fmt.Errorf("solver: negative CG beta %g at iteration %d", betas[k], k)
			}
			off[k] = math.Sqrt(betas[k]) / alphas[k]
		}
	}
	eigs, err := tridiagEigenvalues(diag, off)
	if err != nil {
		return 0, 0, err
	}
	eigMin, eigMax = eigs[0], eigs[0]
	for _, e := range eigs[1:] {
		eigMin = math.Min(eigMin, e)
		eigMax = math.Max(eigMax, e)
	}
	if eigMin <= 0 {
		return 0, 0, fmt.Errorf("solver: non-positive eigenvalue estimate %g (operator not SPD?)", eigMin)
	}
	// Safety factors from the mini-app: shrink the lower bound, grow the
	// upper, so the Chebyshev interval certainly covers the spectrum.
	return eigMin * 0.95, eigMax * 1.05, nil
}

// tridiagEigenvalues computes all eigenvalues of a symmetric tridiagonal
// matrix with diagonal d0 and off-diagonal e0 (e0[i] couples rows i and
// i+1; its last element is ignored) using the QL algorithm with implicit
// shifts, a 0-based translation of the classic tqli routine without
// eigenvector accumulation.
func tridiagEigenvalues(d0, e0 []float64) ([]float64, error) {
	n := len(d0)
	if n == 0 {
		return nil, fmt.Errorf("solver: empty tridiagonal matrix")
	}
	d := append([]float64(nil), d0...)
	e := make([]float64, n) // e[i] couples d[i] and d[i+1]; e[n-1] stays 0
	copy(e, e0[:n-1])

	for l := 0; l < n; l++ {
		iter := 0
		for {
			// Find a negligible off-diagonal element splitting the matrix.
			m := l
			for ; m < n-1; m++ {
				dd := math.Abs(d[m]) + math.Abs(d[m+1])
				if math.Abs(e[m])+dd == dd {
					break
				}
			}
			if m == l {
				break // d[l] has converged to an eigenvalue
			}
			iter++
			if iter > 50 {
				return nil, fmt.Errorf("solver: tridiagonal QL failed to converge at row %d", l)
			}
			// Implicit shift from the 2x2 block at l, then chase the bulge
			// from m-1 down to l with Givens rotations.
			g := (d[l+1] - d[l]) / (2 * e[l])
			r := math.Hypot(g, 1)
			g = d[m] - d[l] + e[l]/(g+math.Copysign(r, g))
			s, c, p := 1.0, 1.0, 0.0
			underflow := false
			for i := m - 1; i >= l; i-- {
				f := s * e[i]
				b := c * e[i]
				r = math.Hypot(f, g)
				e[i+1] = r
				if r == 0 {
					// Recover from underflow: deflate and restart this row.
					d[i+1] -= p
					e[m] = 0
					underflow = true
					break
				}
				s = f / r
				c = g / r
				g = d[i+1] - p
				r = (d[i]-g)*s + 2*c*b
				p = s * r
				d[i+1] = g + p
				g = c*r - b
			}
			if underflow {
				continue
			}
			d[l] -= p
			e[l] = g
			e[m] = 0
		}
	}
	return d, nil
}
