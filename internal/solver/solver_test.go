package solver

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"github.com/warwick-hpsc/tealeaf-go/internal/backends/serial"
	"github.com/warwick-hpsc/tealeaf-go/internal/config"
	"github.com/warwick-hpsc/tealeaf-go/internal/driver"
)

// --- tridiagonal eigenvalue solver -------------------------------------------

// naiveCharPolyEigs brackets eigenvalues of a symmetric tridiagonal matrix
// by Sturm-sequence bisection, an independent oracle for the QL solver.
func naiveCharPolyEigs(d, e []float64) []float64 {
	n := len(d)
	// Gershgorin bounds.
	lo, hi := d[0], d[0]
	for i := 0; i < n; i++ {
		r := 0.0
		if i > 0 {
			r += math.Abs(e[i-1])
		}
		if i < n-1 {
			r += math.Abs(e[i])
		}
		lo = math.Min(lo, d[i]-r)
		hi = math.Max(hi, d[i]+r)
	}
	// Sturm count: number of eigenvalues < x.
	count := func(x float64) int {
		cnt := 0
		q := d[0] - x
		if q < 0 {
			cnt++
		}
		for i := 1; i < n; i++ {
			den := q
			if den == 0 {
				den = 1e-300
			}
			q = d[i] - x - e[i-1]*e[i-1]/den
			if q < 0 {
				cnt++
			}
		}
		return cnt
	}
	eigs := make([]float64, n)
	for k := 0; k < n; k++ {
		a, b := lo-1, hi+1
		for iter := 0; iter < 100; iter++ {
			mid := (a + b) / 2
			if count(mid) <= k {
				a = mid
			} else {
				b = mid
			}
		}
		eigs[k] = (a + b) / 2
	}
	return eigs
}

func TestTridiagEigenvaluesKnown(t *testing.T) {
	// The discrete Laplacian tridiag(-1, 2, -1) of size n has eigenvalues
	// 2 - 2cos(k*pi/(n+1)).
	const n = 12
	d := make([]float64, n)
	e := make([]float64, n)
	for i := range d {
		d[i] = 2
		e[i] = -1
	}
	got, err := tridiagEigenvalues(d, e)
	if err != nil {
		t.Fatal(err)
	}
	sort.Float64s(got)
	for k := 1; k <= n; k++ {
		want := 2 - 2*math.Cos(float64(k)*math.Pi/float64(n+1))
		if math.Abs(got[k-1]-want) > 1e-10 {
			t.Errorf("eig %d = %.12f, want %.12f", k, got[k-1], want)
		}
	}
}

func TestTridiagEigenvaluesDiagonal(t *testing.T) {
	d := []float64{3, 1, 4, 1, 5}
	e := make([]float64, 5)
	got, err := tridiagEigenvalues(d, e)
	if err != nil {
		t.Fatal(err)
	}
	sort.Float64s(got)
	want := []float64{1, 1, 3, 4, 5}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Errorf("diagonal matrix eigs = %v", got)
			break
		}
	}
}

func TestTridiagEigenvaluesSingle(t *testing.T) {
	got, err := tridiagEigenvalues([]float64{7}, []float64{0})
	if err != nil || len(got) != 1 || got[0] != 7 {
		t.Errorf("1x1 matrix: got %v, err %v", got, err)
	}
	if _, err := tridiagEigenvalues(nil, nil); err == nil {
		t.Error("expected error for empty matrix")
	}
}

// TestTridiagEigenvaluesProperty: against the Sturm-bisection oracle on
// random symmetric tridiagonal matrices (quick-check).
func TestTridiagEigenvaluesProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(14)
		d := make([]float64, n)
		e := make([]float64, n)
		for i := range d {
			d[i] = rng.NormFloat64() * 10
			e[i] = rng.NormFloat64() * 3
		}
		got, err := tridiagEigenvalues(d, e)
		if err != nil {
			return false
		}
		sort.Float64s(got)
		want := naiveCharPolyEigs(d, e)
		sort.Float64s(want)
		scale := math.Max(1, math.Abs(want[0])+math.Abs(want[n-1]))
		for i := range got {
			if math.Abs(got[i]-want[i]) > 1e-7*scale {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestEstimateEigenvalues(t *testing.T) {
	// For CG on A = c*I, alpha = 1/c at every iteration and beta = 0, so
	// the Lanczos matrix is diag(c) and both bounds land on c (before the
	// safety factors).
	alphas := []float64{0.5, 0.5, 0.5}
	betas := []float64{0, 0, 0}
	mn, mx, err := EstimateEigenvalues(alphas, betas)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(mn-2*0.95) > 1e-12 || math.Abs(mx-2*1.05) > 1e-12 {
		t.Errorf("bounds = [%g, %g], want [1.9, 2.1]", mn, mx)
	}
}

func TestEstimateEigenvaluesErrors(t *testing.T) {
	if _, _, err := EstimateEigenvalues([]float64{1}, []float64{0}); err == nil {
		t.Error("expected error for a single iteration")
	}
	if _, _, err := EstimateEigenvalues([]float64{1, 0}, []float64{0, 0}); err == nil {
		t.Error("expected error for zero alpha")
	}
	if _, _, err := EstimateEigenvalues([]float64{1, 1}, []float64{-1, 0}); err == nil {
		t.Error("expected error for negative beta")
	}
}

// --- solve options / control flow -------------------------------------------

func TestFromConfig(t *testing.T) {
	cfg := config.BenchmarkN(16)
	cfg.Solver = config.SolverPPCG
	cfg.Preconditioner = config.PrecondJacDiag
	cfg.PPCGInnerSteps = 9
	cfg.EigenCGIters = 15
	opt := FromConfig(&cfg)
	if opt.Solver != config.SolverPPCG || !opt.Precond ||
		opt.PPCGInnerSteps != 9 || opt.EigenCGIters != 15 ||
		opt.Eps != cfg.Eps || opt.MaxIters != cfg.MaxIters {
		t.Errorf("FromConfig = %+v", opt)
	}
}

func TestSolveRejectsBadOptions(t *testing.T) {
	if _, err := Solve(nil, Options{Solver: config.SolverCG, MaxIters: 0, Eps: 1e-10}); err == nil {
		t.Error("expected error for MaxIters=0")
	}
	if _, err := Solve(nil, Options{Solver: config.SolverCG, MaxIters: 10, Eps: 0}); err == nil {
		t.Error("expected error for Eps=0")
	}
	if _, err := Solve(nil, Options{Solver: config.SolverKind(99), MaxIters: 10, Eps: 1e-10}); err == nil {
		t.Error("expected error for unknown solver")
	}
}

func TestConvergedPredicate(t *testing.T) {
	if !converged(0, 0, 1e-10) {
		t.Error("zero initial residual means already converged")
	}
	if !converged(1e-12, 1.0, 1e-10) {
		t.Error("reduction below eps*initial must converge")
	}
	if converged(1e-8, 1.0, 1e-10) {
		t.Error("insufficient reduction must not converge")
	}
}

func TestChebyCoeffsRecurrence(t *testing.T) {
	// The recurrence must generate the standard Chebyshev scalars:
	// rho_0 = 1/sigma, rho_{k+1} = 1/(2*sigma - rho_k), alpha_k =
	// rho_{k+1}*rho_k, beta_k = 2*rho_{k+1}/delta; and rho stays in (0,1)
	// for sigma > 1 (i.e. eigMin > 0).
	cc := newChebyCoeffs(0.1, 2.0)
	if math.Abs(cc.theta-1.05) > 1e-15 || math.Abs(cc.delta-0.95) > 1e-15 {
		t.Fatalf("theta/delta = %g/%g", cc.theta, cc.delta)
	}
	rho := cc.rho
	for k := 0; k < 50; k++ {
		alpha, beta := cc.next()
		rhoNew := 1 / (2*cc.sigma - rho)
		if math.Abs(alpha-rhoNew*rho) > 1e-15 {
			t.Fatalf("step %d: alpha %g != %g", k, alpha, rhoNew*rho)
		}
		if math.Abs(beta-2*rhoNew/cc.delta) > 1e-15 {
			t.Fatalf("step %d: beta %g != %g", k, beta, 2*rhoNew/cc.delta)
		}
		rho = rhoNew
		if rho <= 0 || rho >= 1 {
			t.Fatalf("step %d: rho %g left (0,1)", k, rho)
		}
	}
}

func TestEstimateChebyIters(t *testing.T) {
	// Well-conditioned spectrum: few iterations; ill-conditioned: many.
	good := EstimateChebyIters(1, 2, 1e-10)
	bad := EstimateChebyIters(1e-4, 1, 1e-10)
	if good <= 0 || bad <= good {
		t.Errorf("estimates: cn=2 -> %d, cn=1e4 -> %d", good, bad)
	}
	// Theory check for cn = 4: contraction (2-1)/(2+1) = 1/3, so
	// ln(1e-9)/ln(1/3) ~ 18.9 -> 19.
	if got := EstimateChebyIters(1, 4, 1e-9); got != 19 {
		t.Errorf("cn=4 estimate = %d, want 19", got)
	}
	for _, bad := range [][3]float64{{0, 1, 1e-10}, {1, 1, 1e-10}, {1, 2, 0}, {1, 2, 2}} {
		if got := EstimateChebyIters(bad[0], bad[1], bad[2]); got != 0 {
			t.Errorf("degenerate input %v: got %d, want 0", bad, got)
		}
	}
}

// TestChebyEstimateVsReality: the estimate must land within a small factor
// of the iterations the Chebyshev solver actually needs.
func TestChebyEstimateVsReality(t *testing.T) {
	cfg := config.BenchmarkN(64)
	cfg.EndStep = 1
	cfg.Solver = config.SolverChebyshev
	cfg.EigenCGIters = 8 // switch to Chebyshev well before CG converges
	k := serial.New()
	defer k.Close()
	res, err := driver.Run(cfg, k, New(FromConfig(&cfg)), nil)
	if err != nil {
		t.Fatal(err)
	}
	st := res.Steps[0].Stats
	if st.EstChebyIters <= 0 {
		t.Fatalf("no estimate recorded: %+v", st)
	}
	// The solve includes the CG bootstrap, and the convergence check only
	// fires every 10 iterations, so compare loosely.
	actual := st.Iterations
	if actual > 4*st.EstChebyIters+40 || st.EstChebyIters > 4*actual+40 {
		t.Errorf("estimate %d vs actual %d disagree wildly", st.EstChebyIters, actual)
	}
}
