// Package solver implements the TeaLeaf solve control flow — conjugate
// gradient, Jacobi, Chebyshev and polynomially-preconditioned CG — on top
// of any port's kernel set (driver.Kernels). This mirrors the mini-app's
// structure, where tea_leaf.f90 drives per-port kernels; keeping the
// control flow in one place guarantees every port performs the same
// operations in the same order, so ports are comparable and verifiable
// against each other.
//
// Concurrency and ownership: a Solver is single-goroutine — the driver
// calls it sequentially, and all parallelism lives below the kernel
// boundary inside the port (thread teams, ranks, simulated-GPU blocks).
// The solver owns no field memory; it orchestrates the port's kernels,
// which own their fields, and carries only scalar iteration state between
// calls. One Solver instance drives one solve at a time.
package solver

import (
	"context"
	"errors"
	"fmt"
	"math"

	"github.com/warwick-hpsc/tealeaf-go/internal/config"
	"github.com/warwick-hpsc/tealeaf-go/internal/driver"
)

// Options configures one solve. Construct from a config.Config with
// FromConfig.
type Options struct {
	Solver         config.SolverKind
	Eps            float64 // relative convergence tolerance on the squared residual norm
	MaxIters       int
	Precond        bool // diagonal (Jacobi) preconditioning for CG/Chebyshev
	PPCGInnerSteps int
	EigenCGIters   int // CG iterations used to bootstrap eigenvalue estimates
	// DisableFusion forces the unfused CG kernels even on ports that
	// advertise the fused capabilities — the control arm for fusion
	// benchmarks and the fused ≡ unfused equivalence tests.
	DisableFusion bool

	// MaxRestarts bounds how many times a broken-down CG solve restarts
	// from its current iterate (recomputing the residual and search
	// direction) before the breakdown escalates. 0 disables restarts.
	MaxRestarts int

	// SDCCheckEvery enables the ABFT invariant monitor: every K iterations
	// — and always at convergence, before success is reported — the true
	// residual b − A u is recomputed and compared against the recursive
	// one, and SPD sign invariants are enforced on the CG reductions. A
	// tripped invariant raises ErrSDC (which also chains to ErrBreakdown,
	// so the restart/fallback/rollback ladder applies). <= 0 disables the
	// monitor entirely (the default): the monitored trajectory differs at
	// rounding level from the unmonitored one, so turning it on is an
	// explicit choice, not a silent default.
	SDCCheckEvery int
	// SDCDriftTol overrides the relative true-vs-recursive drift tolerance;
	// <= 0 takes DefaultSDCDriftTol.
	SDCDriftTol float64
	// Fallback is the graceful-degradation chain: when the configured
	// solver (and its restarts) break down, each listed solver is tried in
	// turn on the current iterate — e.g. cg → jacobi. Every hop is recorded
	// in Stats.Fallbacks.
	Fallback []config.SolverKind
}

// FromConfig extracts the solve options from a run configuration.
func FromConfig(cfg *config.Config) Options {
	return Options{
		Solver:         cfg.Solver,
		Eps:            cfg.Eps,
		MaxIters:       cfg.MaxIters,
		Precond:        cfg.Preconditioner != config.PrecondNone,
		PPCGInnerSteps: cfg.PPCGInnerSteps,
		EigenCGIters:   cfg.EigenCGIters,
	}
}

// Stats reports what one solve did.
type Stats struct {
	Iterations      int     // outer solver iterations
	InnerIterations int     // PPCG polynomial steps (0 for other solvers)
	HaloExchanges   int     // exchanges issued by the solve loop
	Error           float64 // final squared residual measure
	InitialError    float64 // initial squared residual measure
	Converged       bool
	EigMin, EigMax  float64 // spectrum estimate (Chebyshev/PPCG only)
	// EstChebyIters is the iteration count Chebyshev theory predicts for
	// the requested tolerance given the spectrum estimate (the mini-app's
	// est_itc); 0 for solvers that do not estimate it.
	EstChebyIters int
	// Restarts counts CG restarts from the current iterate after a
	// detected breakdown (zero/NaN p·w, non-finite or diverging residual).
	Restarts int
	// Fallbacks counts hops down the Options.Fallback degradation chain.
	Fallbacks int
	// SDCChecks counts ABFT true-residual verifications performed (0 when
	// the monitor is disabled). A detection surfaces as an ErrSDC error,
	// not a counter: the solve cannot continue on corrupted state.
	SDCChecks int
}

// Solve runs one implicit conduction solve with the configured method. The
// caller must already have called k.SolveInit (and exchanged the halos it
// needs); Solve leaves u converged and r consistent with it.
//
// When the configured solver breaks down (ErrBreakdown: indefinite
// operator, non-finite reduction, diverging residual) and Options.Fallback
// names alternatives, Solve degrades down the chain: each fallback resumes
// from the current iterate u with a freshly computed residual and a full
// iteration budget, and every hop is counted in Stats.Fallbacks. Breakdown
// escalates only after the whole chain is exhausted.
func Solve(k driver.Kernels, opt Options) (Stats, error) {
	return SolveCtx(context.Background(), k, opt)
}

// SolveCtx is Solve bounded by a context: the iteration loops poll it once
// per iteration and return the partial Stats accumulated so far with the
// cancellation cause when it fires. Cancellation is not a breakdown — it
// never triggers restarts or the fallback chain. A nil context solves
// unbounded.
func SolveCtx(ctx context.Context, k driver.Kernels, opt Options) (Stats, error) {
	if opt.MaxIters <= 0 {
		return Stats{}, fmt.Errorf("solver: MaxIters must be positive, got %d", opt.MaxIters)
	}
	if opt.Eps <= 0 {
		return Stats{}, fmt.Errorf("solver: Eps must be positive, got %g", opt.Eps)
	}
	st, err := solveWith(ctx, k, opt, opt.Solver)
	if err == nil || !errors.Is(err, ErrBreakdown) {
		return st, err
	}
	for _, fb := range opt.Fallback {
		st.Fallbacks++
		// Resume from the current iterate: recompute r = u0 - A u (and z)
		// so the fallback starts from consistent state rather than the
		// wreckage of the broken-down iteration.
		k.HaloExchange([]driver.FieldID{driver.FieldU}, 1)
		st.HaloExchanges++
		k.CalcResidual()
		if opt.Precond {
			k.ApplyPrecond()
		}
		fbOpt := opt
		fbOpt.Solver = fb
		fbSt, fbErr := solveWith(ctx, k, fbOpt, fb)
		mergeStats(&st, fbSt)
		if fbErr == nil {
			return st, nil
		}
		if !errors.Is(fbErr, ErrBreakdown) {
			return st, fbErr
		}
		err = fbErr
	}
	return st, fmt.Errorf("solver: fallback chain exhausted after %d hops: %w", st.Fallbacks, err)
}

// solveWith dispatches one solver kind.
func solveWith(ctx context.Context, k driver.Kernels, opt Options, kind config.SolverKind) (Stats, error) {
	switch kind {
	case config.SolverCG:
		return solveCG(ctx, k, opt)
	case config.SolverJacobi:
		return solveJacobi(ctx, k, opt)
	case config.SolverChebyshev:
		return solveChebyshev(ctx, k, opt)
	case config.SolverPPCG:
		return solvePPCG(ctx, k, opt)
	default:
		return Stats{}, fmt.Errorf("solver: unknown solver kind %v", kind)
	}
}

// mergeStats folds the stats of a fallback solve into the running total:
// work accumulates, convergence state is taken from the latest attempt.
func mergeStats(st *Stats, s Stats) {
	st.Iterations += s.Iterations
	st.InnerIterations += s.InnerIterations
	st.HaloExchanges += s.HaloExchanges
	st.Restarts += s.Restarts
	st.Fallbacks += s.Fallbacks
	st.SDCChecks += s.SDCChecks
	st.Error = s.Error
	st.Converged = s.Converged
	if s.EigMin != 0 || s.EigMax != 0 {
		st.EigMin, st.EigMax = s.EigMin, s.EigMax
		st.EstChebyIters = s.EstChebyIters
	}
}

// converged implements the convergence test shared by the Krylov solvers: a
// relative reduction of the squared residual measure below eps, guarded for
// an identically-zero initial residual (already solved).
func converged(err, initial, eps float64) bool {
	if initial == 0 {
		return true
	}
	return math.Abs(err) < eps*math.Abs(initial)
}

// ErrBreakdown marks any numerical breakdown of an iterative solve: an
// indefinite operator (zero or NaN p·w), a non-finite residual reduction, or
// a diverging residual. Callers match it with errors.Is to decide whether
// restarting or falling back to a different solver could still succeed.
var ErrBreakdown = errors.New("solver: numerical breakdown")

var errIndefinite = fmt.Errorf("operator appears indefinite (zero or NaN p·w): %w", ErrBreakdown)

// divergenceFactor is the growth of the squared residual over its initial
// value past which a solve is declared diverging rather than converging
// slowly. CG residuals oscillate, so the bound is deliberately enormous —
// it exists to catch runaway growth from corrupted state, not slow solves.
const divergenceFactor = 1e12

// checkReduction is the cheap guard applied to every residual reduction the
// iteration loops consume: rejects NaN/Inf and runaway growth. Two float
// comparisons per iteration — negligible next to a mesh sweep.
func checkReduction(rrn, initial float64) error {
	if math.IsNaN(rrn) || math.IsInf(rrn, 0) {
		return fmt.Errorf("non-finite residual reduction %v: %w", rrn, ErrBreakdown)
	}
	if initial != 0 && math.Abs(rrn) > divergenceFactor*math.Abs(initial) {
		return fmt.Errorf("residual diverged (%g from initial %g): %w", rrn, initial, ErrBreakdown)
	}
	return nil
}

// cgPath binds the kernel entry points one CG iteration uses: the fused
// capabilities when the port advertises them (and fusion is enabled), the
// plain kernels otherwise. Resolving once per solve keeps the per-iteration
// dispatch free of interface probing.
type cgPath struct {
	k   driver.Kernels
	fw  driver.FusedWDot
	fur driver.FusedURPrecond
}

func newCGPath(k driver.Kernels, opt Options) cgPath {
	p := cgPath{k: k}
	if !opt.DisableFusion {
		p.fw = driver.AsFusedWDot(k)
		p.fur = driver.AsFusedURPrecond(k)
	}
	return p
}

// calcW computes w = A p and returns p·w, in one sweep when fused.
func (p cgPath) calcW() float64 {
	if p.fw != nil {
		return p.fw.CGCalcWFused()
	}
	return p.k.CGCalcW()
}

// calcUR updates u and r and returns the new rr (r·z preconditioned), in
// one sweep when fused.
func (p cgPath) calcUR(alpha float64, precond bool) float64 {
	if p.fur != nil {
		return p.fur.CGCalcURFused(alpha, precond)
	}
	return p.k.CGCalcUR(alpha, precond)
}

// cgIteration performs one CG iteration and returns the new rr. The alpha
// and beta used are appended to the provided slices when they are non-nil
// (the eigenvalue bootstrap records them). With the monitor on, the SPD
// sign invariants are enforced on both reductions: p·Ap and r·z are
// positive away from the convergence floor, so a negative value — the
// signature of a sign-flipped reduction — raises ErrSDC instead of folding
// into alpha and silently steering the iterate.
//
// The halo exchange of p is the caller's responsibility, issued right after
// the CGCalcP (or CGInitP) that produced p rather than at the head of the
// next iteration. The global kernel sequence is identical — ...CGCalcP,
// halo(p), CGCalcW... either way — but keeping the exchange adjacent to the
// loops it depends on makes the cross-iteration chain
// [cg_calc_p → halo(p) → cg_calc_w] explicit: on a tiling ops context those
// loops queue as one chain and execute cache-resident at the p·w demand,
// and the converged exit skips the dangling exchange entirely.
func cgIteration(path cgPath, opt Options, rro float64, alphas, betas *[]float64, st *Stats, mon sdcMonitor) (float64, error) {
	k := path.k
	pw := path.calcW()
	if pw == 0 || math.IsNaN(pw) || math.IsInf(pw, 0) {
		return 0, errIndefinite
	}
	if err := mon.guardSign("p·Ap", pw, st.InitialError, opt.Eps, st.Iterations); err != nil {
		return 0, err
	}
	alpha := rro / pw
	rrn := path.calcUR(alpha, opt.Precond)
	if err := checkReduction(rrn, st.InitialError); err != nil {
		return 0, err
	}
	if err := mon.guardSign("r·z", rrn, st.InitialError, opt.Eps, st.Iterations); err != nil {
		return 0, err
	}
	beta := rrn / rro
	k.CGCalcP(beta, opt.Precond)
	if alphas != nil {
		*alphas = append(*alphas, alpha)
	}
	if betas != nil {
		*betas = append(*betas, beta)
	}
	st.Iterations++
	return rrn, nil
}

func solveCG(ctx context.Context, k driver.Kernels, opt Options) (Stats, error) {
	var st Stats
	path := newCGPath(k, opt)
	mon := newSDCMonitor(opt)
	rro := k.CGInitP(opt.Precond)
	st.InitialError = rro
	st.Error = rro
	if converged(rro, rro, opt.Eps) && rro == 0 {
		st.Converged = true
		return st, nil
	}
	// Prologue exchange for the p CGInitP just wrote; every later exchange
	// rides the tail of the iteration that rewrote p (see cgIteration).
	k.HaloExchange([]driver.FieldID{driver.FieldP}, 1)
	st.HaloExchanges++
	for st.Iterations < opt.MaxIters {
		if cerr := ctxErr(ctx); cerr != nil {
			return st, cerr
		}
		rrn, err := cgIteration(path, opt, rro, nil, nil, &st, mon)
		if err == nil {
			rro = rrn
			st.Error = rrn
			conv := converged(rrn, st.InitialError, opt.Eps)
			if mon.on() && (conv || mon.due(st.Iterations)) {
				// The drift check doubles as residual replacement: on
				// success the port's r (and z) hold the freshly recomputed
				// true residual, so the recursion continues from truth. At
				// convergence it is the gate that blocks a false success —
				// a corrupted iterate whose recursive residual kept
				// shrinking fails here, never reaching the caller as a
				// converged solve.
				var truth float64
				truth, err = mon.verifyResidual(k, opt.Precond, rrn, &st)
				if err == nil && !conv {
					rro, st.Error = truth, truth
				}
			}
			if err == nil {
				if conv {
					st.Converged = true
					return st, nil
				}
				if st.Iterations < opt.MaxIters {
					k.HaloExchange([]driver.FieldID{driver.FieldP}, 1)
					st.HaloExchanges++
				}
				continue
			}
		}
		if !errors.Is(err, ErrBreakdown) || st.Restarts >= opt.MaxRestarts {
			return st, err
		}
		// Restart from the current iterate: recompute r = u0 - A u and
		// rebuild the Krylov space from scratch. This is the classic
		// restarted-CG recovery — it sacrifices the accumulated
		// conjugacy but keeps all progress made on u. If u itself was
		// poisoned (NaN reached it before the guard fired), the
		// recomputed rro fails checkReduction and the breakdown
		// escalates instead of looping.
		st.Restarts++
		k.HaloExchange([]driver.FieldID{driver.FieldU}, 1)
		st.HaloExchanges++
		k.CalcResidual()
		if opt.Precond {
			k.ApplyPrecond()
		}
		rro = k.CGInitP(opt.Precond)
		if err := checkReduction(rro, st.InitialError); err != nil {
			return st, err
		}
		if rro == 0 {
			st.Error = 0
			st.Converged = true
			return st, nil
		}
		k.HaloExchange([]driver.FieldID{driver.FieldP}, 1)
		st.HaloExchanges++
	}
	return st, nil
}

// solveJacobi has no drift monitor: every sweep recomputes the update norm
// directly from u, so there is no recursive quantity to drift — a corrupted
// iterate either self-corrects (Jacobi is a contraction towards the same
// fixed point from any state) or trips the non-finite guard.
func solveJacobi(ctx context.Context, k driver.Kernels, opt Options) (Stats, error) {
	var st Stats
	for st.Iterations < opt.MaxIters {
		if cerr := ctxErr(ctx); cerr != nil {
			return st, cerr
		}
		k.HaloExchange([]driver.FieldID{driver.FieldU}, 1)
		st.HaloExchanges++
		k.JacobiCopyU()
		err := k.JacobiIterate()
		st.Iterations++
		st.Error = err
		if math.IsNaN(err) || math.IsInf(err, 0) {
			return st, fmt.Errorf("solver: non-finite Jacobi update norm %v: %w", err, ErrBreakdown)
		}
		if st.Iterations == 1 {
			st.InitialError = err
		}
		// The mini-app's Jacobi converges on the absolute update norm.
		if err < opt.Eps {
			st.Converged = true
			return st, nil
		}
	}
	return st, nil
}

// bootstrapCG runs the eigenvalue-estimation CG phase shared by Chebyshev
// and PPCG: plain (optionally diagonal-preconditioned) CG for up to
// opt.EigenCGIters iterations, recording alphas and betas. It may converge
// outright, in which case done is true.
func bootstrapCG(ctx context.Context, k driver.Kernels, opt Options, st *Stats) (rro float64, alphas, betas []float64, done bool, err error) {
	path := newCGPath(k, opt)
	mon := newSDCMonitor(opt)
	rro = k.CGInitP(opt.Precond)
	st.InitialError = rro
	st.Error = rro
	if rro == 0 {
		st.Converged = true
		return rro, nil, nil, true, nil
	}
	iters := opt.EigenCGIters
	if iters < 2 {
		iters = 2
	}
	if iters > opt.MaxIters {
		iters = opt.MaxIters
	}
	k.HaloExchange([]driver.FieldID{driver.FieldP}, 1)
	st.HaloExchanges++
	for n := 0; n < iters; n++ {
		if cerr := ctxErr(ctx); cerr != nil {
			return rro, alphas, betas, false, cerr
		}
		rrn, cgErr := cgIteration(path, opt, rro, &alphas, &betas, st, mon)
		if cgErr != nil {
			return rro, alphas, betas, false, cgErr
		}
		rro = rrn
		st.Error = rrn
		if converged(rrn, st.InitialError, opt.Eps) {
			st.Converged = true
			return rro, alphas, betas, true, nil
		}
		if n+1 < iters {
			k.HaloExchange([]driver.FieldID{driver.FieldP}, 1)
			st.HaloExchanges++
		}
	}
	return rro, alphas, betas, false, nil
}

// chebyCoeffs holds the scalar recurrence state of a Chebyshev iteration
// over the interval [eigMin, eigMax].
type chebyCoeffs struct {
	theta, delta, sigma float64
	rho                 float64
}

func newChebyCoeffs(eigMin, eigMax float64) chebyCoeffs {
	theta := (eigMax + eigMin) / 2
	delta := (eigMax - eigMin) / 2
	sigma := theta / delta
	return chebyCoeffs{theta: theta, delta: delta, sigma: sigma, rho: 1 / sigma}
}

// next advances the recurrence and returns the (alpha, beta) scalars of the
// next smoothing step: sd = alpha*sd + beta*r.
func (c *chebyCoeffs) next() (alpha, beta float64) {
	rhoNew := 1 / (2*c.sigma - c.rho)
	alpha = rhoNew * c.rho
	beta = rhoNew * 2 / c.delta
	c.rho = rhoNew
	return alpha, beta
}

func solveChebyshev(ctx context.Context, k driver.Kernels, opt Options) (Stats, error) {
	var st Stats
	mon := newSDCMonitor(opt)
	_, alphas, betas, done, err := bootstrapCG(ctx, k, opt, &st)
	if err != nil || done {
		return st, err
	}
	eigMin, eigMax, err := EstimateEigenvalues(alphas, betas)
	if err != nil {
		return st, err
	}
	st.EigMin, st.EigMax = eigMin, eigMax
	st.EstChebyIters = EstimateChebyIters(eigMin, eigMax, opt.Eps)
	cc := newChebyCoeffs(eigMin, eigMax)
	k.ChebyInit(cc.theta, opt.Precond)
	// The residual-norm reduction check costs a full reduction, so like the
	// mini-app we only check periodically.
	const checkEvery = 10
	for st.Iterations < opt.MaxIters {
		if cerr := ctxErr(ctx); cerr != nil {
			return st, cerr
		}
		k.HaloExchange([]driver.FieldID{driver.FieldSD}, 1)
		st.HaloExchanges++
		alpha, beta := cc.next()
		k.ChebyIterate(alpha, beta, opt.Precond)
		st.Iterations++
		if st.Iterations%checkEvery == 0 || st.Iterations == opt.MaxIters {
			rrn := k.Norm2R()
			st.Error = rrn
			if err := checkReduction(rrn, st.InitialError); err != nil {
				return st, err
			}
			conv := converged(rrn, st.InitialError, opt.Eps)
			if mon.on() && (conv || mon.due(st.Iterations)) {
				// Chebyshev updates r recursively, so the same drift check
				// applies: recompute r = u0 − A u (in r·r space — the
				// measure this loop converges on) and compare. On success z
				// is refreshed so the smoothing recursion continues from
				// the replaced residual.
				if _, verr := mon.verifyResidual(k, false, rrn, &st); verr != nil {
					return st, verr
				}
				if opt.Precond {
					k.ApplyPrecond()
				}
			}
			if conv {
				st.Converged = true
				return st, nil
			}
		}
	}
	return st, nil
}

func solvePPCG(ctx context.Context, k driver.Kernels, opt Options) (Stats, error) {
	var st Stats
	if opt.PPCGInnerSteps <= 0 {
		return st, fmt.Errorf("solver: PPCG needs positive inner steps, got %d", opt.PPCGInnerSteps)
	}
	mon := newSDCMonitor(opt)
	// Bootstrap with plain CG (never diagonal-preconditioned here: the
	// polynomial preconditioner replaces it) to estimate the spectrum.
	bootOpt := opt
	bootOpt.Precond = false
	_, alphas, betas, done, err := bootstrapCG(ctx, k, bootOpt, &st)
	if err != nil || done {
		return st, err
	}
	eigMin, eigMax, err := EstimateEigenvalues(alphas, betas)
	if err != nil {
		return st, err
	}
	st.EigMin, st.EigMax = eigMin, eigMax

	// applyPoly computes z = P(A) r with a fixed number of Chebyshev
	// smoothing steps — the polynomial preconditioner. P is an SPD
	// polynomial of A on [eigMin, eigMax], so outer CG theory applies.
	applyPoly := func() {
		cc := newChebyCoeffs(eigMin, eigMax)
		k.PPCGInitInner(cc.theta)
		for s := 0; s < opt.PPCGInnerSteps; s++ {
			k.HaloExchange([]driver.FieldID{driver.FieldSD}, 1)
			st.HaloExchanges++
			alpha, beta := cc.next()
			k.PPCGInnerIterate(alpha, beta)
			st.InnerIterations++
		}
		k.PPCGFinishInner()
	}

	applyPoly()
	path := newCGPath(k, opt)
	rro := k.CGInitP(true) // p = z, rro = r.z
	// As in solveCG, p's exchange rides the tail of the kernel that wrote p.
	k.HaloExchange([]driver.FieldID{driver.FieldP}, 1)
	st.HaloExchanges++
	for st.Iterations < opt.MaxIters {
		if cerr := ctxErr(ctx); cerr != nil {
			return st, cerr
		}
		pw := path.calcW()
		if pw == 0 || math.IsNaN(pw) || math.IsInf(pw, 0) {
			return st, errIndefinite
		}
		if err := mon.guardSign("p·Ap", pw, st.InitialError, opt.Eps, st.Iterations); err != nil {
			return st, err
		}
		alpha := rro / pw
		rrTrue := path.calcUR(alpha, false) // plain r.r for the convergence test
		st.Iterations++
		st.Error = rrTrue
		if err := checkReduction(rrTrue, st.InitialError); err != nil {
			return st, err
		}
		conv := converged(rrTrue, st.InitialError, opt.Eps)
		if mon.on() && (conv || mon.due(st.Iterations)) {
			// PPCG converges on the plain r·r, so the drift check compares
			// in that space; the replaced residual feeds the next applyPoly
			// (which rebuilds z from r), so no scalar state needs fixing up.
			if _, verr := mon.verifyResidual(k, false, rrTrue, &st); verr != nil {
				return st, verr
			}
		}
		if conv {
			st.Converged = true
			return st, nil
		}
		applyPoly()
		rrn := k.DotRZ()
		beta := rrn / rro
		k.CGCalcP(beta, true)
		rro = rrn
		if st.Iterations < opt.MaxIters {
			k.HaloExchange([]driver.FieldID{driver.FieldP}, 1)
			st.HaloExchanges++
		}
	}
	return st, nil
}

// EstimateChebyIters predicts how many Chebyshev iterations reduce the
// error by eps for a spectrum in [eigMin, eigMax] — the mini-app's est_itc
// diagnostic: with condition number cn, the per-iteration contraction is
// (sqrt(cn)-1)/(sqrt(cn)+1), so it takes about ln(eps)/ln(contraction)
// iterations.
func EstimateChebyIters(eigMin, eigMax, eps float64) int {
	if eigMin <= 0 || eigMax <= eigMin || eps <= 0 || eps >= 1 {
		return 0
	}
	cn := eigMax / eigMin
	contraction := (math.Sqrt(cn) - 1) / (math.Sqrt(cn) + 1)
	if contraction <= 0 {
		return 1
	}
	return int(math.Ceil(math.Log(eps) / math.Log(contraction)))
}
