package solver

import (
	"context"
	"errors"
	"math"
	"testing"

	"github.com/warwick-hpsc/tealeaf-go/internal/backends/serial"
	"github.com/warwick-hpsc/tealeaf-go/internal/config"
	"github.com/warwick-hpsc/tealeaf-go/internal/driver"
	"github.com/warwick-hpsc/tealeaf-go/internal/grid"
)

// initSolve builds a serial chunk ready for one solve of cfg: generate,
// halos, set_field, solve_init — the same sequence the driver performs.
func initSolve(t *testing.T, cfg *config.Config) *serial.Chunk {
	t.Helper()
	k := serial.New()
	t.Cleanup(k.Close)
	m, err := grid.NewMesh(cfg.XMin, cfg.XMax, cfg.YMin, cfg.YMax, cfg.NX, cfg.NY)
	if err != nil {
		t.Fatal(err)
	}
	if err := k.Generate(m, cfg.States); err != nil {
		t.Fatal(err)
	}
	k.HaloExchange([]driver.FieldID{driver.FieldDensity, driver.FieldEnergy0}, 2)
	k.SetField()
	k.HaloExchange([]driver.FieldID{driver.FieldDensity, driver.FieldEnergy1}, 2)
	dt := cfg.InitialTimestep
	rx := dt / (m.Dx * m.Dx)
	ry := dt / (m.Dy * m.Dy)
	k.SolveInit(cfg.Coefficient, rx, ry, cfg.Preconditioner)
	return k
}

// flippingKernels wraps a port and, after a given number of CGCalcUR calls,
// flips bit 52 of one interior element of u — a finite, silent doubling of
// a solution value that no NaN/divergence guard can see, the canonical SDC
// the ABFT monitor exists to catch. Interface embedding hides the wrapped
// port's capability methods, so the solver takes the plain kernel path.
type flippingKernels struct {
	driver.Kernels
	after int
	calls int
	fired bool
}

func (f *flippingKernels) CGCalcUR(alpha float64, precond bool) float64 {
	rr := f.Kernels.CGCalcUR(alpha, precond)
	f.calls++
	if f.calls == f.after && !f.fired {
		f.fired = true
		u := f.Kernels.FetchField(driver.FieldU)
		mid := len(u) / 2
		u[mid] = math.Float64frombits(math.Float64bits(u[mid]) ^ (1 << 52))
		f.Kernels.(driver.FieldRestorer).RestoreField(driver.FieldU, u)
	}
	return rr
}

// TestSDCMonitorCleanSolve: the monitor on a fault-free solve performs its
// checks, raises nothing, and still converges to a true residual within
// tolerance.
func TestSDCMonitorCleanSolve(t *testing.T) {
	cfg := config.BenchmarkN(24)
	k := initSolve(t, &cfg)
	opt := FromConfig(&cfg)
	opt.SDCCheckEvery = 8
	st, err := Solve(k, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !st.Converged {
		t.Fatalf("monitored solve did not converge: %+v", st)
	}
	if st.SDCChecks == 0 {
		t.Fatal("monitor enabled but no checks performed")
	}
	k.HaloExchange([]driver.FieldID{driver.FieldU}, 1)
	k.CalcResidual()
	if true2 := k.Norm2R(); true2 > 10*cfg.Eps*st.InitialError {
		t.Errorf("true residual %g too large after monitored solve (initial %g)", true2, st.InitialError)
	}
}

// TestSDCMonitorDetectsStateFlip: a bit-52 flip of a u element decouples
// the true residual from the recursive one; the drift check catches it and
// the solve fails with ErrSDC (which also chains to ErrBreakdown, so the
// escalation ladder applies).
func TestSDCMonitorDetectsStateFlip(t *testing.T) {
	cfg := config.BenchmarkN(24)
	k := initSolve(t, &cfg)
	opt := FromConfig(&cfg)
	opt.SDCCheckEvery = 2
	opt.DisableFusion = true
	opt.MaxRestarts = 0 // a restart would self-heal the iterate; surface the error instead
	_, err := Solve(&flippingKernels{Kernels: k, after: 3}, opt)
	if !errors.Is(err, ErrSDC) {
		t.Fatalf("err = %v, want ErrSDC", err)
	}
	if !errors.Is(err, ErrBreakdown) {
		t.Fatalf("ErrSDC must chain to ErrBreakdown for the escalation ladder, got %v", err)
	}
}

// TestSDCSilentWithoutMonitor: the negative control — the identical flip
// with the monitor off sails through every breakdown guard: the solve
// "converges" (on the recursive residual) while the true residual reveals
// the answer is finite and wrong.
func TestSDCSilentWithoutMonitor(t *testing.T) {
	cfg := config.BenchmarkN(24)
	k := initSolve(t, &cfg)
	opt := FromConfig(&cfg)
	opt.DisableFusion = true
	fk := &flippingKernels{Kernels: k, after: 3}
	st, err := Solve(fk, opt)
	if !fk.fired {
		t.Fatal("fault never injected (solve converged too early?)")
	}
	if err != nil {
		t.Fatalf("unmonitored solve errored (guards should not see a finite flip): %v", err)
	}
	if !st.Converged {
		t.Fatalf("unmonitored solve did not converge: %+v", st)
	}
	k.HaloExchange([]driver.FieldID{driver.FieldU}, 1)
	k.CalcResidual()
	true2 := k.Norm2R()
	if math.IsNaN(true2) || math.IsInf(true2, 0) {
		t.Fatalf("true residual is non-finite (%v): flip was not silent", true2)
	}
	if true2 < 1e3*cfg.Eps*st.InitialError {
		t.Fatalf("true residual %g too small — the flip did not corrupt the answer (initial %g)",
			true2, st.InitialError)
	}
}

// TestSDCSignGuard: a negative r·z away from the convergence floor — the
// signature of a sign-flipped reduction — trips the SPD invariant.
func TestSDCSignGuard(t *testing.T) {
	k := &seqStub{ur: []float64{-0.5}}
	opt := cgBreakOpts()
	opt.SDCCheckEvery = 1000 // monitor on; periodic drift check never due
	_, err := Solve(k, opt)
	if !errors.Is(err, ErrSDC) {
		t.Fatalf("err = %v, want ErrSDC from the sign guard", err)
	}

	// The same sequence with the monitor off is invisible: a finite
	// negative reduction passes every breakdown guard.
	k2 := &seqStub{ur: []float64{-0.5, 1e-30}}
	if _, err := Solve(k2, cgBreakOpts()); errors.Is(err, ErrSDC) {
		t.Fatalf("sign guard fired with monitor off: %v", err)
	}
}

// TestSDCDriftGuardScripted: scripted reductions where the recursive
// residual (1e-3) disagrees with the recomputed truth (the stub's Norm2R
// returns 1): the periodic drift check raises ErrSDC.
func TestSDCDriftGuardScripted(t *testing.T) {
	k := &seqStub{ur: []float64{1e-3}}
	opt := cgBreakOpts()
	opt.SDCCheckEvery = 1
	_, err := Solve(k, opt)
	if !errors.Is(err, ErrSDC) {
		t.Fatalf("err = %v, want ErrSDC from the drift check", err)
	}
	found := false
	for _, call := range k.trace {
		if call == "CalcResidual" {
			found = true
		}
	}
	if !found {
		t.Fatal("drift check never recomputed the true residual")
	}
}

// TestSolveCtxCancelled: a cancelled context stops the solve before any
// iteration and surfaces the cancellation cause, not a breakdown.
func TestSolveCtxCancelled(t *testing.T) {
	cfg := config.BenchmarkN(16)
	k := initSolve(t, &cfg)
	ctx, cancel := context.WithCancelCause(context.Background())
	sentinel := errors.New("deadline budget spent")
	cancel(sentinel)
	st, err := SolveCtx(ctx, k, FromConfig(&cfg))
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want the cancellation cause", err)
	}
	if errors.Is(err, ErrBreakdown) {
		t.Fatal("cancellation must not look like a breakdown (would trigger restarts/fallbacks)")
	}
	if st.Iterations != 0 {
		t.Fatalf("pre-cancelled solve ran %d iterations", st.Iterations)
	}
}

// TestSolveCtxMidSolveCancel: cancellation mid-solve returns the partial
// stats accumulated so far.
func TestSolveCtxMidSolveCancel(t *testing.T) {
	cfg := config.BenchmarkN(24)
	k := initSolve(t, &cfg)
	ctx, cancel := context.WithCancel(context.Background())
	n := 0
	stop := &cancelAfter{Kernels: k, n: &n, cancel: cancel, after: 3}
	opt := FromConfig(&cfg)
	opt.DisableFusion = true
	st, err := SolveCtx(ctx, stop, opt)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if st.Iterations < 3 || st.Iterations >= opt.MaxIters {
		t.Fatalf("partial stats: %d iterations", st.Iterations)
	}
}

// cancelAfter cancels its context after n CGCalcUR calls.
type cancelAfter struct {
	driver.Kernels
	n      *int
	after  int
	cancel context.CancelFunc
}

func (c *cancelAfter) CGCalcUR(alpha float64, precond bool) float64 {
	rr := c.Kernels.CGCalcUR(alpha, precond)
	*c.n++
	if *c.n == c.after {
		c.cancel()
	}
	return rr
}
