package solver

import (
	"testing"

	"github.com/warwick-hpsc/tealeaf-go/internal/config"
	"github.com/warwick-hpsc/tealeaf-go/internal/driver"
	"github.com/warwick-hpsc/tealeaf-go/internal/grid"
	"github.com/warwick-hpsc/tealeaf-go/internal/profiler"
)

// stubKernels is a minimal driver.Kernels that records which CG entry
// points the solver dispatches into. Its reductions are chosen so one CG
// iteration converges: rro = 1, pw = 1, and the post-update rr is tiny.
type stubKernels struct {
	calls []string
}

func (s *stubKernels) Name() string                              { return "stub" }
func (s *stubKernels) Generate(*grid.Mesh, []config.State) error { return nil }
func (s *stubKernels) SetField()                                 {}
func (s *stubKernels) FieldSummary() driver.Totals               { return driver.Totals{} }
func (s *stubKernels) HaloExchange([]driver.FieldID, int)        {}
func (s *stubKernels) SolveInit(config.Coefficient, float64, float64, config.Preconditioner) {
}
func (s *stubKernels) SolveFinalise()       {}
func (s *stubKernels) ResetField()          {}
func (s *stubKernels) CalcResidual()        {}
func (s *stubKernels) Norm2R() float64      { return 1 }
func (s *stubKernels) DotRZ() float64       { return 1 }
func (s *stubKernels) ApplyPrecond()        {}
func (s *stubKernels) CGInitP(bool) float64 { return 1 }
func (s *stubKernels) CGCalcW() float64 {
	s.calls = append(s.calls, "CGCalcW")
	return 1
}
func (s *stubKernels) CGCalcUR(float64, bool) float64 {
	s.calls = append(s.calls, "CGCalcUR")
	return 1e-30
}
func (s *stubKernels) CGCalcP(float64, bool)               {}
func (s *stubKernels) JacobiCopyU()                        {}
func (s *stubKernels) JacobiIterate() float64              { return 0 }
func (s *stubKernels) ChebyInit(float64, bool)             {}
func (s *stubKernels) ChebyIterate(float64, float64, bool) {}
func (s *stubKernels) PPCGInitInner(float64)               {}
func (s *stubKernels) PPCGInnerIterate(float64, float64)   {}
func (s *stubKernels) PPCGFinishInner()                    {}
func (s *stubKernels) FetchField(driver.FieldID) []float64 { return nil }
func (s *stubKernels) Close()                              {}

// fusedStub additionally advertises both fused capabilities.
type fusedStub struct {
	stubKernels
}

func (s *fusedStub) CGCalcWFused() float64 {
	s.calls = append(s.calls, "CGCalcWFused")
	return 1
}

func (s *fusedStub) CGCalcURFused(float64, bool) float64 {
	s.calls = append(s.calls, "CGCalcURFused")
	return 1e-30
}

var cgOpts = Options{Solver: config.SolverCG, Eps: 1e-10, MaxIters: 5}

// TestCGDispatchFusedPath: a port advertising the fused capabilities must
// have its fused entry points driven and its plain CGCalcW/CGCalcUR never
// called from the CG loop.
func TestCGDispatchFusedPath(t *testing.T) {
	k := &fusedStub{}
	st, err := Solve(k, cgOpts)
	if err != nil {
		t.Fatal(err)
	}
	if !st.Converged || st.Iterations != 1 {
		t.Fatalf("stub solve: %+v", st)
	}
	want := []string{"CGCalcWFused", "CGCalcURFused"}
	if len(k.calls) != len(want) || k.calls[0] != want[0] || k.calls[1] != want[1] {
		t.Errorf("fused port drove %v, want %v", k.calls, want)
	}
}

// TestCGDispatchFallbackPath: a port without the fused interfaces must fall
// back to the separate kernels transparently.
func TestCGDispatchFallbackPath(t *testing.T) {
	k := &stubKernels{}
	st, err := Solve(k, cgOpts)
	if err != nil {
		t.Fatal(err)
	}
	if !st.Converged || st.Iterations != 1 {
		t.Fatalf("stub solve: %+v", st)
	}
	want := []string{"CGCalcW", "CGCalcUR"}
	if len(k.calls) != len(want) || k.calls[0] != want[0] || k.calls[1] != want[1] {
		t.Errorf("plain port drove %v, want %v", k.calls, want)
	}
}

// TestCGDispatchDisableFusion: the control arm must force the unfused
// kernels even when the port is fused-capable.
func TestCGDispatchDisableFusion(t *testing.T) {
	k := &fusedStub{}
	opt := cgOpts
	opt.DisableFusion = true
	if _, err := Solve(k, opt); err != nil {
		t.Fatal(err)
	}
	want := []string{"CGCalcW", "CGCalcUR"}
	if len(k.calls) != len(want) || k.calls[0] != want[0] || k.calls[1] != want[1] {
		t.Errorf("DisableFusion drove %v, want %v", k.calls, want)
	}
}

// TestFusedDetectionThroughWrapper guards the classic embedding pitfall: a
// wrapper that embeds driver.Kernels structurally satisfies the fused
// interfaces even when the wrapped port does not, so capability detection
// must consult the wrapper's CapabilityReporter, not a bare type assertion.
func TestFusedDetectionThroughWrapper(t *testing.T) {
	prof := profiler.New()

	plain := driver.Instrument(&stubKernels{}, prof)
	if driver.AsFusedWDot(plain) != nil || driver.AsFusedURPrecond(plain) != nil {
		t.Error("instrumented plain port must not report fused capabilities")
	}
	path := newCGPath(plain, cgOpts)
	if path.fw != nil || path.fur != nil {
		t.Error("cgPath resolved fused entry points through a plain wrapper")
	}

	fused := driver.Instrument(&fusedStub{}, prof)
	if driver.AsFusedWDot(fused) == nil || driver.AsFusedURPrecond(fused) == nil {
		t.Error("instrumented fused port must keep its fused capabilities")
	}
}
