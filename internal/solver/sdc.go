package solver

import (
	"context"
	"fmt"
	"math"

	"github.com/warwick-hpsc/tealeaf-go/internal/driver"
)

// This file is the solver's ABFT (algorithm-based fault tolerance) layer:
// an opt-in invariant monitor that catches silent data corruption the
// breakdown guards cannot. The breakdown guards reject NaN/Inf and runaway
// divergence; a bit-flip that leaves a *finite, plausible* value in the
// iterate or a reduction sails through them and converges to a silently
// wrong answer. The monitor closes that hole with two invariant families:
//
//   - Drift: every K iterations (and at convergence, before the solve is
//     allowed to report success) the true residual r = b − A u is recomputed
//     from the iterate and compared against the recursively updated residual
//     measure. In exact arithmetic they are equal; in floating point they
//     track to rounding. Corruption of u decouples them — the recursive
//     recurrence keeps "converging" while the true residual does not — so
//     relative drift beyond tolerance is corruption, not noise. The
//     recomputed residual then replaces the recursive one (van der Vorst's
//     residual replacement), which is why a passing check also improves the
//     attainable accuracy rather than costing it.
//   - Sign: for an SPD operator and preconditioner, p·Ap and r·z are
//     positive. A negative value away from the convergence floor means a
//     sign-flipped reduction or corrupted state.
//
// A tripped invariant raises ErrSDC, which also chains to ErrBreakdown so
// the existing escalation ladder applies unchanged: restart from the
// iterate (MaxRestarts), fall back down the solver chain (Fallback), and
// finally roll back to the last CRC-validated checkpoint (RunResilient).

// ErrSDC re-exports driver.ErrSDC, the sentinel for a solver invariant
// violation attributed to silent data corruption. It lives in driver so the
// recovery loop can classify failures without an import cycle.
var ErrSDC = driver.ErrSDC

// errSDCBreakdown chains ErrSDC to ErrBreakdown: a detected corruption is a
// breakdown for the purposes of restart/fallback/rollback escalation, while
// errors.Is(err, ErrSDC) still identifies it as a corruption for counting.
var errSDCBreakdown = fmt.Errorf("%w: %w", ErrSDC, ErrBreakdown)

// DefaultSDCCheckEvery is the monitor interval K the CLI uses when
// -sdc-check-every is enabled without a value: one true-residual
// recomputation (two mesh sweeps and a halo) per 32 CG iterations, well
// under the <5% overhead budget BenchmarkSDCOverhead pins.
const DefaultSDCCheckEvery = 32

// DefaultSDCDriftTol is the relative drift tolerance between the true and
// recursive residual measures, scaled by the larger of the true residual
// and the initial one. Rounding keeps genuine CG drift orders of magnitude
// below it for the mesh sizes and iteration counts TeaLeaf runs; a single
// exponent- or sign-bit flip lands orders of magnitude above it.
const DefaultSDCDriftTol = 1e-8

// sdcMonitor is the resolved per-solve monitor configuration. The zero
// value is disabled: every hook is a single integer test on the hot path.
type sdcMonitor struct {
	every int
	tol   float64
}

func newSDCMonitor(opt Options) sdcMonitor {
	if opt.SDCCheckEvery <= 0 {
		return sdcMonitor{}
	}
	tol := opt.SDCDriftTol
	if tol <= 0 {
		tol = DefaultSDCDriftTol
	}
	return sdcMonitor{every: opt.SDCCheckEvery, tol: tol}
}

func (m sdcMonitor) on() bool { return m.every > 0 }

// due reports whether the periodic drift check fires at this iteration.
func (m sdcMonitor) due(iter int) bool { return m.every > 0 && iter%m.every == 0 }

// verifyResidual recomputes the true residual r = b − A u from the current
// iterate and compares its measure — r·z when preconditioned, r·r otherwise
// — against the recursive measure rrn. Drift beyond tolerance (relative to
// the larger of the true and initial measures, so the check stays
// meaningful at the convergence floor) returns an ErrSDC. On success the
// recomputed residual has replaced the recursive one in the port's state,
// and the caller should carry the returned true measure forward.
func (m sdcMonitor) verifyResidual(k driver.Kernels, precond bool, rrn float64, st *Stats) (float64, error) {
	st.SDCChecks++
	k.HaloExchange([]driver.FieldID{driver.FieldU}, 1)
	st.HaloExchanges++
	k.CalcResidual()
	var truth float64
	if precond {
		k.ApplyPrecond()
		truth = k.DotRZ()
	} else {
		truth = k.Norm2R()
	}
	if err := checkReduction(truth, st.InitialError); err != nil {
		return truth, err
	}
	scale := math.Max(math.Abs(truth), math.Abs(st.InitialError))
	if scale == 0 {
		return truth, nil
	}
	if drift := math.Abs(truth-rrn) / scale; drift > m.tol {
		return truth, fmt.Errorf(
			"solver: true residual %g drifted from recursive %g at iteration %d (relative drift %.3e > %.3e): %w",
			truth, rrn, st.Iterations, drift, m.tol, errSDCBreakdown)
	}
	return truth, nil
}

// guardSign checks the SPD positivity invariant for a reduction value:
// negative away from the convergence floor means corruption. what names the
// quantity for the error message.
func (m sdcMonitor) guardSign(what string, v, initial, eps float64, iter int) error {
	if !m.on() || v >= 0 || converged(v, initial, eps) {
		return nil
	}
	return fmt.Errorf("solver: %s = %g negative for an SPD system at iteration %d: %w",
		what, v, iter, errSDCBreakdown)
}

// ctxErr returns the context's cancellation cause, or nil. The solve loops
// poll it once per iteration; a nil context means an unbounded solve.
func ctxErr(ctx context.Context) error {
	if ctx == nil {
		return nil
	}
	select {
	case <-ctx.Done():
		return context.Cause(ctx)
	default:
		return nil
	}
}
