package solver

import (
	"math"
	"testing"

	"github.com/warwick-hpsc/tealeaf-go/internal/backends/serial"
	"github.com/warwick-hpsc/tealeaf-go/internal/config"
	"github.com/warwick-hpsc/tealeaf-go/internal/driver"
	"github.com/warwick-hpsc/tealeaf-go/internal/grid"
)

// prepare runs the pre-solve phase on a fresh serial chunk so Solve can be
// exercised directly.
func prepare(t *testing.T, cfg config.Config) *serial.Chunk {
	t.Helper()
	k := serial.New()
	t.Cleanup(k.Close)
	m, err := grid.NewMesh(cfg.XMin, cfg.XMax, cfg.YMin, cfg.YMax, cfg.NX, cfg.NY)
	if err != nil {
		t.Fatal(err)
	}
	if err := k.Generate(m, cfg.States); err != nil {
		t.Fatal(err)
	}
	k.HaloExchange([]driver.FieldID{driver.FieldDensity, driver.FieldEnergy0}, 2)
	k.SetField()
	k.HaloExchange([]driver.FieldID{driver.FieldDensity, driver.FieldEnergy1}, 2)
	dt := cfg.InitialTimestep
	k.SolveInit(cfg.Coefficient, dt/(m.Dx*m.Dx), dt/(m.Dy*m.Dy), cfg.Preconditioner)
	return k
}

func TestSolveAllMethodsDirect(t *testing.T) {
	kinds := []struct {
		kind config.SolverKind
		eps  float64
	}{
		{config.SolverCG, 1e-14},
		{config.SolverChebyshev, 1e-12},
		{config.SolverPPCG, 1e-12},
		{config.SolverJacobi, 1e-10},
	}
	var refU []float64
	for _, c := range kinds {
		c := c
		t.Run(c.kind.String(), func(t *testing.T) {
			cfg := config.BenchmarkN(48)
			cfg.Solver = c.kind
			cfg.Eps = c.eps
			cfg.MaxIters = 100000
			cfg.EigenCGIters = 5 // switch before the bootstrap converges
			k := prepare(t, cfg)
			st, err := Solve(k, FromConfig(&cfg))
			if err != nil {
				t.Fatal(err)
			}
			if !st.Converged {
				t.Fatalf("%s did not converge: %+v", c.kind, st)
			}
			if st.Iterations <= 0 || st.Error < 0 {
				t.Errorf("implausible stats: %+v", st)
			}
			if c.kind == config.SolverChebyshev || c.kind == config.SolverPPCG {
				if st.EigMin <= 0 || st.EigMax <= st.EigMin {
					t.Errorf("bad spectrum estimate: [%g, %g]", st.EigMin, st.EigMax)
				}
			}
			if c.kind == config.SolverPPCG && st.InnerIterations == 0 {
				t.Error("PPCG recorded no inner iterations")
			}
			if st.HaloExchanges == 0 {
				t.Error("no halo exchanges recorded")
			}
			k.SolveFinalise()
			u := k.FetchField(driver.FieldU)
			if refU == nil {
				refU = u
				return
			}
			for i := range u {
				if d := math.Abs(u[i] - refU[i]); d > 1e-6*(1+math.Abs(refU[i])) {
					t.Fatalf("cell %d: %s u=%g differs from CG %g", i, c.kind, u[i], refU[i])
				}
			}
		})
	}
}

// TestSolveZeroResidual: a uniform material has u0 = A u0 exactly? No —
// but a zero-energy problem has r = 0 and must converge in zero
// iterations.
func TestSolveZeroResidual(t *testing.T) {
	cfg := config.BenchmarkN(12)
	cfg.States = []config.State{{Index: 1, Density: 3, Energy: 0}}
	// Energy 0 is rejected by Validate for good reason in decks; build the
	// state by hand for the degenerate-solve path.
	cfg.States[0].Energy = 0
	k := serial.New()
	defer k.Close()
	m, _ := grid.NewMesh(cfg.XMin, cfg.XMax, cfg.YMin, cfg.YMax, cfg.NX, cfg.NY)
	if err := k.Generate(m, cfg.States); err != nil {
		t.Fatal(err)
	}
	k.HaloExchange([]driver.FieldID{driver.FieldDensity, driver.FieldEnergy0}, 2)
	k.SetField()
	k.HaloExchange([]driver.FieldID{driver.FieldDensity, driver.FieldEnergy1}, 2)
	k.SolveInit(cfg.Coefficient, 1, 1, config.PrecondNone)
	st, err := Solve(k, Options{Solver: config.SolverCG, Eps: 1e-12, MaxIters: 10})
	if err != nil {
		t.Fatal(err)
	}
	if !st.Converged || st.Iterations != 0 {
		t.Errorf("zero problem should converge instantly: %+v", st)
	}
}

// TestSolveMaxItersExhausted: an impossible tolerance must return
// converged=false after exactly MaxIters iterations, not loop forever or
// error.
func TestSolveMaxItersExhausted(t *testing.T) {
	cfg := config.BenchmarkN(24)
	k := prepare(t, cfg)
	st, err := Solve(k, Options{Solver: config.SolverCG, Eps: 1e-300, MaxIters: 5})
	if err != nil {
		t.Fatal(err)
	}
	if st.Converged || st.Iterations != 5 {
		t.Errorf("expected 5 non-converged iterations, got %+v", st)
	}
}

// TestPPCGInnerStepsScale: more inner smoothing steps must not increase
// the outer iteration count.
func TestPPCGInnerStepsScale(t *testing.T) {
	outer := func(inner int) int {
		cfg := config.BenchmarkN(32)
		cfg.Solver = config.SolverPPCG
		cfg.PPCGInnerSteps = inner
		cfg.EigenCGIters = 6
		k := prepare(t, cfg)
		st, err := Solve(k, FromConfig(&cfg))
		if err != nil {
			t.Fatal(err)
		}
		if !st.Converged {
			t.Fatalf("inner=%d did not converge", inner)
		}
		return st.Iterations
	}
	few := outer(2)
	many := outer(16)
	t.Logf("outer iterations: inner=2 -> %d, inner=16 -> %d", few, many)
	if many > few {
		t.Errorf("stronger preconditioning increased outer iterations: %d > %d", many, few)
	}
}
