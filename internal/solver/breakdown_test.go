package solver

import (
	"errors"
	"math"
	"strings"
	"testing"

	"github.com/warwick-hpsc/tealeaf-go/internal/config"
)

// seqStub scripts the solver's reductions: each call pops the next value
// from its sequence (the final value repeats), which lets a test walk the
// solve loop into any breakdown path without building a pathological mesh.
type seqStub struct {
	stubKernels
	initP  []float64
	pw     []float64
	ur     []float64
	jacobi []float64
	trace  []string
}

func pop(seq *[]float64, def float64) float64 {
	if len(*seq) == 0 {
		return def
	}
	v := (*seq)[0]
	if len(*seq) > 1 {
		*seq = (*seq)[1:]
	}
	return v
}

func (s *seqStub) CGInitP(bool) float64 {
	s.trace = append(s.trace, "CGInitP")
	return pop(&s.initP, 1)
}

func (s *seqStub) CGCalcW() float64 {
	s.trace = append(s.trace, "CGCalcW")
	return pop(&s.pw, 1)
}

func (s *seqStub) CGCalcUR(float64, bool) float64 {
	s.trace = append(s.trace, "CGCalcUR")
	return pop(&s.ur, 1e-30)
}

func (s *seqStub) CalcResidual() {
	s.trace = append(s.trace, "CalcResidual")
}

func (s *seqStub) JacobiIterate() float64 {
	s.trace = append(s.trace, "JacobiIterate")
	return pop(&s.jacobi, 0)
}

func cgBreakOpts() Options {
	return Options{Solver: config.SolverCG, Eps: 1e-10, MaxIters: 20}
}

// TestCGBreakdownZeroPW: a zero p·w is the canonical CG breakdown (division
// by zero in alpha) and must surface as ErrBreakdown, not a NaN solve.
func TestCGBreakdownZeroPW(t *testing.T) {
	k := &seqStub{pw: []float64{0}}
	st, err := Solve(k, cgBreakOpts())
	if !errors.Is(err, ErrBreakdown) {
		t.Fatalf("err = %v, want ErrBreakdown", err)
	}
	if st.Restarts != 0 {
		t.Errorf("restarts = %d with MaxRestarts=0", st.Restarts)
	}
}

// TestCGBreakdownNaNPropagation: NaN reaching either reduction — p·w or the
// post-update rr — must stop the iteration immediately.
func TestCGBreakdownNaNPropagation(t *testing.T) {
	for name, k := range map[string]*seqStub{
		"pw":  {pw: []float64{math.NaN()}},
		"inf": {pw: []float64{math.Inf(1)}},
		"rrn": {ur: []float64{math.NaN()}},
	} {
		if _, err := Solve(k, cgBreakOpts()); !errors.Is(err, ErrBreakdown) {
			t.Errorf("%s: err = %v, want ErrBreakdown", name, err)
		}
	}
}

// TestCGDivergenceGuard: a residual exploding past divergenceFactor times
// the initial one trips the guard even though every value is finite.
func TestCGDivergenceGuard(t *testing.T) {
	k := &seqStub{initP: []float64{1}, ur: []float64{1e13}}
	_, err := Solve(k, cgBreakOpts())
	if !errors.Is(err, ErrBreakdown) || !strings.Contains(err.Error(), "diverged") {
		t.Fatalf("err = %v, want a divergence breakdown", err)
	}
}

// TestCGZeroInitialResidual: rro == 0 means the system is already solved;
// the loop must exit converged without a single iteration.
func TestCGZeroInitialResidual(t *testing.T) {
	k := &seqStub{initP: []float64{0}}
	st, err := Solve(k, cgBreakOpts())
	if err != nil {
		t.Fatal(err)
	}
	if !st.Converged || st.Iterations != 0 {
		t.Errorf("zero-residual solve: %+v, want instant convergence", st)
	}
}

// TestCGRestartRecovers: with MaxRestarts > 0 a transient breakdown restarts
// from the current iterate — residual recomputed, Krylov space rebuilt — and
// the solve still converges.
func TestCGRestartRecovers(t *testing.T) {
	k := &seqStub{pw: []float64{0, 1}}
	opt := cgBreakOpts()
	opt.MaxRestarts = 1
	st, err := Solve(k, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !st.Converged || st.Restarts != 1 {
		t.Fatalf("restarted solve: %+v, want converged with 1 restart", st)
	}
	trace := strings.Join(k.trace, " ")
	if !strings.Contains(trace, "CalcResidual") {
		t.Errorf("restart did not recompute the residual: %v", k.trace)
	}
	if strings.Count(trace, "CGInitP") != 2 {
		t.Errorf("restart did not rebuild the search direction: %v", k.trace)
	}
}

// TestCGRestartBudgetBounded: a persistent breakdown must exhaust exactly
// MaxRestarts restarts and then escalate — no infinite restart loop.
func TestCGRestartBudgetBounded(t *testing.T) {
	k := &seqStub{pw: []float64{0}}
	opt := cgBreakOpts()
	opt.MaxRestarts = 2
	st, err := Solve(k, opt)
	if !errors.Is(err, ErrBreakdown) {
		t.Fatalf("err = %v, want ErrBreakdown after exhausting restarts", err)
	}
	if st.Restarts != 2 {
		t.Errorf("restarts = %d, want 2", st.Restarts)
	}
}

// TestCGRestartPoisonedIterate: if the recomputed residual after a restart
// is NaN the iterate itself is poisoned, so the restart must escalate
// instead of looping on garbage.
func TestCGRestartPoisonedIterate(t *testing.T) {
	k := &seqStub{initP: []float64{1, math.NaN()}, pw: []float64{0}}
	opt := cgBreakOpts()
	opt.MaxRestarts = 5
	st, err := Solve(k, opt)
	if !errors.Is(err, ErrBreakdown) {
		t.Fatalf("err = %v, want ErrBreakdown", err)
	}
	if st.Restarts != 1 {
		t.Errorf("restarts = %d, want exactly 1 before escalation", st.Restarts)
	}
}

// TestFallbackChainRecovers: when CG is hopeless the solve must degrade to
// the configured fallback (jacobi) and report success plus the hop count.
func TestFallbackChainRecovers(t *testing.T) {
	k := &seqStub{pw: []float64{0}} // CG always breaks down
	opt := cgBreakOpts()
	opt.Fallback = []config.SolverKind{config.SolverJacobi}
	st, err := Solve(k, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !st.Converged || st.Fallbacks != 1 {
		t.Fatalf("fallback solve: %+v, want converged with 1 fallback", st)
	}
	trace := strings.Join(k.trace, " ")
	if !strings.Contains(trace, "CalcResidual") {
		t.Errorf("fallback did not refresh the residual first: %v", k.trace)
	}
	if !strings.Contains(trace, "JacobiIterate") {
		t.Errorf("fallback never ran jacobi: %v", k.trace)
	}
}

// TestFallbackChainExhausted: when every solver in the chain breaks down the
// final error must say so and still match ErrBreakdown.
func TestFallbackChainExhausted(t *testing.T) {
	k := &seqStub{pw: []float64{0}, jacobi: []float64{math.NaN()}}
	opt := cgBreakOpts()
	opt.Fallback = []config.SolverKind{config.SolverJacobi}
	st, err := Solve(k, opt)
	if !errors.Is(err, ErrBreakdown) {
		t.Fatalf("err = %v, want ErrBreakdown", err)
	}
	if !strings.Contains(err.Error(), "fallback chain exhausted") {
		t.Errorf("error %q does not report chain exhaustion", err)
	}
	if st.Fallbacks != 1 {
		t.Errorf("fallbacks = %d, want 1", st.Fallbacks)
	}
}

// TestJacobiNaNGuard: the Jacobi loop's own reduction is scanned too.
func TestJacobiNaNGuard(t *testing.T) {
	k := &seqStub{jacobi: []float64{math.NaN()}}
	opt := cgBreakOpts()
	opt.Solver = config.SolverJacobi
	if _, err := Solve(k, opt); !errors.Is(err, ErrBreakdown) {
		t.Fatalf("err = %v, want ErrBreakdown", err)
	}
}

// BenchmarkReductionGuard prices the per-iteration scalar guard: it must be
// a few comparisons, invisible next to any mesh sweep.
func BenchmarkReductionGuard(b *testing.B) {
	var sink error
	for i := 0; i < b.N; i++ {
		sink = checkReduction(1e-7, 1.0)
	}
	_ = sink
}
