package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"sort"
	"sync"
	"time"
)

// Span is one completed, named interval — typically a kernel invocation
// recorded through a profiler span observer, or a whole job recorded by the
// serve layer.
type Span struct {
	Name  string        // event name, e.g. "cg_calc_w_fused"
	Cat   string        // category, e.g. "kernel" or "job"
	TID   int           // trace row: jobs use their sequence number
	Start time.Time     // wall-clock start
	Dur   time.Duration // duration
}

// traceEvent is one Chrome trace-event ("X" complete event). Timestamps and
// durations are microseconds, per the trace-event format specification.
type traceEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// traceFile is the JSON object container chrome://tracing and Perfetto load.
type traceFile struct {
	TraceEvents     []traceEvent `json:"traceEvents"`
	DisplayTimeUnit string       `json:"displayTimeUnit"`
}

// Tracer captures spans into a bounded ring buffer: when more than the
// configured maximum arrive, the oldest are dropped (Dropped counts them),
// so a long-running service's trace endpoint always returns the most recent
// window without unbounded memory growth.
type Tracer struct {
	mu      sync.Mutex
	epoch   time.Time // ts zero point for the exported timeline
	spans   []Span    // ring storage
	next    int       // ring write cursor
	full    bool      // ring has wrapped
	dropped int64
}

// DefaultTraceSpans is the span capacity used when NewTracer is given a
// non-positive maximum — roomy enough for several full bm_250 solves of
// ~20 kernel calls per CG iteration.
const DefaultTraceSpans = 1 << 16

// NewTracer creates a tracer holding at most maxSpans spans (<= 0 takes
// DefaultTraceSpans).
func NewTracer(maxSpans int) *Tracer {
	if maxSpans <= 0 {
		maxSpans = DefaultTraceSpans
	}
	return &Tracer{epoch: time.Now(), spans: make([]Span, 0, maxSpans)}
}

// Record captures one span.
func (t *Tracer) Record(s Span) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if !t.full && len(t.spans) < cap(t.spans) {
		t.spans = append(t.spans, s)
		return
	}
	t.full = true
	t.spans[t.next] = s
	t.next = (t.next + 1) % cap(t.spans)
	t.dropped++
}

// Observer returns a span-observer callback (the profiler.SpanObserver
// shape) recording every reported interval under the given category and
// trace row.
func (t *Tracer) Observer(cat string, tid int) func(name string, start time.Time, d time.Duration) {
	return func(name string, start time.Time, d time.Duration) {
		t.Record(Span{Name: name, Cat: cat, TID: tid, Start: start, Dur: d})
	}
}

// Len returns the number of buffered spans.
func (t *Tracer) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.spans)
}

// Dropped returns how many spans the ring has evicted.
func (t *Tracer) Dropped() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// snapshot returns the buffered spans oldest-first.
func (t *Tracer) snapshot() []Span {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Span, 0, len(t.spans))
	if t.full {
		out = append(out, t.spans[t.next:]...)
		out = append(out, t.spans[:t.next]...)
	} else {
		out = append(out, t.spans...)
	}
	return out
}

// WriteJSON renders the buffered spans as Chrome trace-event JSON — the
// {"traceEvents": [...]} object form — loadable in chrome://tracing and
// https://ui.perfetto.dev. Events are emitted in timestamp order with
// microsecond resolution relative to the tracer's creation time.
// When the ring has evicted spans the export is a *window*, not the whole
// run; a "M" (metadata) event named trace_dropped_spans with the drop count
// in its args is prepended so a trimmed trace is distinguishable from a
// complete one when loaded in a viewer or diffed by tooling.
func (t *Tracer) WriteJSON(w io.Writer) error {
	spans := t.snapshot()
	dropped := t.Dropped()
	sort.SliceStable(spans, func(i, j int) bool { return spans[i].Start.Before(spans[j].Start) })
	f := traceFile{TraceEvents: make([]traceEvent, 0, len(spans)+1), DisplayTimeUnit: "ms"}
	if dropped > 0 {
		f.TraceEvents = append(f.TraceEvents, traceEvent{
			Name: "trace_dropped_spans",
			Cat:  "__metadata",
			Ph:   "M",
			PID:  1,
			TID:  1,
			Args: map[string]any{"dropped": dropped},
		})
	}
	for _, s := range spans {
		tid := s.TID
		if tid == 0 {
			tid = 1
		}
		f.TraceEvents = append(f.TraceEvents, traceEvent{
			Name: s.Name,
			Cat:  s.Cat,
			Ph:   "X",
			TS:   float64(s.Start.Sub(t.epoch)) / float64(time.Microsecond),
			Dur:  float64(s.Dur) / float64(time.Microsecond),
			PID:  1,
			TID:  tid,
		})
	}
	return json.NewEncoder(w).Encode(f)
}

// Handler serves the trace buffer as a downloadable JSON document.
func (t *Tracer) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("Content-Disposition", `attachment; filename="tealeaf-trace.json"`)
		if err := t.WriteJSON(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
}
