package obs

import (
	"io"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("jobs_total", "total jobs")
	c.Inc()
	c.Add(2)
	if got := c.Value(); got != 3 {
		t.Fatalf("counter = %v, want 3", got)
	}
	g := r.Gauge("depth", "queue depth")
	g.Set(5)
	g.Dec()
	g.Add(-1)
	if got := g.Value(); got != 3 {
		t.Fatalf("gauge = %v, want 3", got)
	}
	// Get-or-create returns the same instrument.
	if r.Counter("jobs_total", "") != c {
		t.Fatal("re-registration returned a different counter")
	}
}

func TestHistogramBucketsAreCumulative(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", "latency", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.5, 0.5, 5, 50} {
		h.Observe(v)
	}
	var b strings.Builder
	r.WriteText(&b)
	out := b.String()
	for _, want := range []string{
		`lat_bucket{le="0.1"} 1`,
		`lat_bucket{le="1"} 3`,
		`lat_bucket{le="10"} 4`,
		`lat_bucket{le="+Inf"} 5`,
		`lat_count 5`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	if h.Count() != 5 {
		t.Errorf("Count = %d, want 5", h.Count())
	}
	if h.Sum() != 56.05 {
		t.Errorf("Sum = %v, want 56.05", h.Sum())
	}
}

// expositionLine matches one valid Prometheus text-format line: a comment
// or a sample "name{labels} value".
var expositionLine = regexp.MustCompile(
	`^(# (HELP|TYPE) [a-zA-Z_:][a-zA-Z0-9_:]* .*|[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^{}]*\})? [^ ]+)$`)

// TestExpositionParses verifies every line of a mixed registry's output is
// grammatically valid text format, each family has exactly one TYPE line,
// and every sample value parses as a float.
func TestExpositionParses(t *testing.T) {
	r := NewRegistry()
	r.Counter("teaserve_jobs_submitted_total", "jobs accepted").Add(4)
	r.Counter(`tealeaf_kernel_sweeps_total{kernel="cg_calc_w"}`, "sweeps").Add(12)
	r.Counter(`tealeaf_kernel_sweeps_total{kernel="cg_calc_p"}`, "sweeps").Add(6)
	r.Gauge("teaserve_jobs_inflight", "running now").Set(2)
	r.Histogram("teaserve_solve_seconds", "solve latency", nil).Observe(0.3)

	srv := httptest.NewServer(r.Handler())
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Errorf("content type %q", ct)
	}
	var b strings.Builder
	if _, err := io.Copy(&b, resp.Body); err != nil {
		t.Fatal(err)
	}
	out := b.String()

	typeLines := map[string]int{}
	for _, line := range strings.Split(strings.TrimRight(out, "\n"), "\n") {
		if !expositionLine.MatchString(line) {
			t.Errorf("invalid exposition line %q", line)
		}
		if strings.HasPrefix(line, "# TYPE ") {
			typeLines[strings.Fields(line)[2]]++
		}
		if !strings.HasPrefix(line, "#") {
			val := line[strings.LastIndexByte(line, ' ')+1:]
			if _, err := strconv.ParseFloat(val, 64); err != nil {
				t.Errorf("sample value %q does not parse: %v", val, err)
			}
		}
	}
	for fam, n := range typeLines {
		if n != 1 {
			t.Errorf("family %s has %d TYPE lines, want 1", fam, n)
		}
	}
	// Both labeled series share one family header.
	if typeLines["tealeaf_kernel_sweeps_total"] != 1 {
		t.Errorf("labeled family missing its single TYPE line:\n%s", out)
	}
	if !strings.Contains(out, `tealeaf_kernel_sweeps_total{kernel="cg_calc_w"} 12`) {
		t.Errorf("missing labeled sample:\n%s", out)
	}
}

func TestRegistryKindConflictPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x_total", "")
	defer func() {
		if recover() == nil {
			t.Fatal("registering x_total as a gauge did not panic")
		}
	}()
	r.Gauge("x_total", "")
}

func TestConcurrentUpdatesRace(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "")
	h := r.Histogram("h", "", nil)
	g := r.Gauge("g", "")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
				g.Add(1)
				h.Observe(float64(j) / 100)
			}
		}()
	}
	var b strings.Builder
	r.WriteText(&b) // concurrent scrape must be safe
	wg.Wait()
	if c.Value() != 8000 {
		t.Fatalf("counter = %v, want 8000", c.Value())
	}
	if h.Count() != 8000 {
		t.Fatalf("histogram count = %v, want 8000", h.Count())
	}
}
