package obs

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// decodeTrace unmarshals trace JSON back into the container shape and
// validates the invariants chrome://tracing relies on: an optional leading
// "M" metadata event announcing dropped spans, then complete ("X") events
// with non-negative ts/dur and a name, sorted by timestamp.
func decodeTrace(t *testing.T, data []byte) traceFile {
	t.Helper()
	var f traceFile
	if err := json.Unmarshal(data, &f); err != nil {
		t.Fatalf("trace output is not valid JSON: %v\n%s", err, data)
	}
	events := f.TraceEvents
	if len(events) > 0 && events[0].Ph == "M" {
		if events[0].Name != "trace_dropped_spans" || events[0].Args["dropped"] == nil {
			t.Errorf("malformed metadata event: %+v", events[0])
		}
		events = events[1:]
	}
	for i, ev := range events {
		if ev.Ph != "X" {
			t.Errorf("event %d: ph = %q, want X", i, ev.Ph)
		}
		if ev.Name == "" {
			t.Errorf("event %d: empty name", i)
		}
		if ev.TS < 0 || ev.Dur < 0 {
			t.Errorf("event %d: negative ts/dur (%v/%v)", i, ev.TS, ev.Dur)
		}
		if i > 0 && ev.TS < events[i-1].TS {
			t.Errorf("event %d: timestamps not sorted", i)
		}
	}
	return f
}

func TestTracerExportsValidTraceEventJSON(t *testing.T) {
	tr := NewTracer(16)
	base := time.Now()
	tr.Record(Span{Name: "cg_calc_w", Cat: "kernel", TID: 3, Start: base, Dur: 40 * time.Microsecond})
	tr.Record(Span{Name: "cg_calc_ur", Cat: "kernel", TID: 3, Start: base.Add(time.Millisecond), Dur: 55 * time.Microsecond})
	obsFn := tr.Observer("kernel", 4)
	obsFn("halo", base.Add(2*time.Millisecond), 10*time.Microsecond)

	var b bytes.Buffer
	if err := tr.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	f := decodeTrace(t, b.Bytes())
	if len(f.TraceEvents) != 3 {
		t.Fatalf("got %d events, want 3", len(f.TraceEvents))
	}
	if f.TraceEvents[2].Name != "halo" || f.TraceEvents[2].TID != 4 {
		t.Errorf("observer span mangled: %+v", f.TraceEvents[2])
	}
	if f.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q", f.DisplayTimeUnit)
	}
}

func TestTracerRingDropsOldest(t *testing.T) {
	tr := NewTracer(4)
	base := time.Now()
	for i := 0; i < 10; i++ {
		tr.Record(Span{Name: "k", Start: base.Add(time.Duration(i) * time.Millisecond), Dur: time.Microsecond})
	}
	if tr.Len() != 4 {
		t.Fatalf("Len = %d, want 4", tr.Len())
	}
	if tr.Dropped() != 6 {
		t.Fatalf("Dropped = %d, want 6", tr.Dropped())
	}
	spans := tr.snapshot()
	// The survivors are the newest four, oldest-first.
	for i, s := range spans {
		want := base.Add(time.Duration(6+i) * time.Millisecond)
		if !s.Start.Equal(want) {
			t.Errorf("span %d start = %v, want %v", i, s.Start, want)
		}
	}
}

// TestTracerFullRingSurfacesDrops is the regression test for the silent
// span-drop bug: once the ring wraps, the export must announce the loss via
// a leading metadata event, and a GaugeFunc bridge must surface the same
// count on a metrics scrape — a busy server's trace can no longer pass as
// complete.
func TestTracerFullRingSurfacesDrops(t *testing.T) {
	tr := NewTracer(4)
	base := time.Now()
	for i := 0; i < 10; i++ {
		tr.Record(Span{Name: "k", Cat: "kernel", TID: 1,
			Start: base.Add(time.Duration(i) * time.Millisecond), Dur: time.Microsecond})
	}

	var b bytes.Buffer
	if err := tr.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	f := decodeTrace(t, b.Bytes())
	if len(f.TraceEvents) != 5 { // metadata event + the 4 surviving spans
		t.Fatalf("got %d events, want 5", len(f.TraceEvents))
	}
	meta := f.TraceEvents[0]
	if meta.Ph != "M" || meta.Name != "trace_dropped_spans" {
		t.Fatalf("first event is not the drop metadata event: %+v", meta)
	}
	if got, ok := meta.Args["dropped"].(float64); !ok || got != 6 {
		t.Errorf("metadata args = %v, want dropped=6", meta.Args)
	}

	// The /metrics bridge: a callback gauge reads the live drop counter.
	r := NewRegistry()
	r.GaugeFunc("tealeaf_trace_dropped_spans", "spans evicted from the trace ring",
		func() float64 { return float64(tr.Dropped()) })
	var expo strings.Builder
	r.WriteText(&expo)
	if !strings.Contains(expo.String(), "tealeaf_trace_dropped_spans 6") {
		t.Errorf("drop gauge missing from exposition:\n%s", expo.String())
	}
	tr.Record(Span{Name: "k", Start: base.Add(time.Second), Dur: time.Microsecond})
	expo.Reset()
	r.WriteText(&expo)
	if !strings.Contains(expo.String(), "tealeaf_trace_dropped_spans 7") {
		t.Errorf("drop gauge is not live:\n%s", expo.String())
	}
}

// TestTracerNoDropsNoMetadata pins the compatibility contract: a trace that
// lost nothing carries no metadata event, so existing consumers that expect
// only "X" events keep working until a drop actually happens.
func TestTracerNoDropsNoMetadata(t *testing.T) {
	tr := NewTracer(8)
	tr.Record(Span{Name: "k", Start: time.Now(), Dur: time.Microsecond})
	var b bytes.Buffer
	if err := tr.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	f := decodeTrace(t, b.Bytes())
	for _, ev := range f.TraceEvents {
		if ev.Ph != "X" {
			t.Errorf("unexpected non-X event without drops: %+v", ev)
		}
	}
}

func TestTraceHandler(t *testing.T) {
	tr := NewTracer(0)
	tr.Record(Span{Name: "job", Cat: "job", TID: 1, Start: time.Now(), Dur: time.Millisecond})
	srv := httptest.NewServer(tr.Handler())
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var b bytes.Buffer
	if _, err := b.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("content type %q", ct)
	}
	f := decodeTrace(t, b.Bytes())
	if len(f.TraceEvents) != 1 {
		t.Fatalf("got %d events, want 1", len(f.TraceEvents))
	}
}
