package obs

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"testing"
	"time"
)

// decodeTrace unmarshals trace JSON back into the container shape and
// validates the invariants chrome://tracing relies on: every event is a
// complete ("X") event with non-negative ts/dur and a name.
func decodeTrace(t *testing.T, data []byte) traceFile {
	t.Helper()
	var f traceFile
	if err := json.Unmarshal(data, &f); err != nil {
		t.Fatalf("trace output is not valid JSON: %v\n%s", err, data)
	}
	for i, ev := range f.TraceEvents {
		if ev.Ph != "X" {
			t.Errorf("event %d: ph = %q, want X", i, ev.Ph)
		}
		if ev.Name == "" {
			t.Errorf("event %d: empty name", i)
		}
		if ev.TS < 0 || ev.Dur < 0 {
			t.Errorf("event %d: negative ts/dur (%v/%v)", i, ev.TS, ev.Dur)
		}
		if i > 0 && ev.TS < f.TraceEvents[i-1].TS {
			t.Errorf("event %d: timestamps not sorted", i)
		}
	}
	return f
}

func TestTracerExportsValidTraceEventJSON(t *testing.T) {
	tr := NewTracer(16)
	base := time.Now()
	tr.Record(Span{Name: "cg_calc_w", Cat: "kernel", TID: 3, Start: base, Dur: 40 * time.Microsecond})
	tr.Record(Span{Name: "cg_calc_ur", Cat: "kernel", TID: 3, Start: base.Add(time.Millisecond), Dur: 55 * time.Microsecond})
	obsFn := tr.Observer("kernel", 4)
	obsFn("halo", base.Add(2*time.Millisecond), 10*time.Microsecond)

	var b bytes.Buffer
	if err := tr.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	f := decodeTrace(t, b.Bytes())
	if len(f.TraceEvents) != 3 {
		t.Fatalf("got %d events, want 3", len(f.TraceEvents))
	}
	if f.TraceEvents[2].Name != "halo" || f.TraceEvents[2].TID != 4 {
		t.Errorf("observer span mangled: %+v", f.TraceEvents[2])
	}
	if f.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q", f.DisplayTimeUnit)
	}
}

func TestTracerRingDropsOldest(t *testing.T) {
	tr := NewTracer(4)
	base := time.Now()
	for i := 0; i < 10; i++ {
		tr.Record(Span{Name: "k", Start: base.Add(time.Duration(i) * time.Millisecond), Dur: time.Microsecond})
	}
	if tr.Len() != 4 {
		t.Fatalf("Len = %d, want 4", tr.Len())
	}
	if tr.Dropped() != 6 {
		t.Fatalf("Dropped = %d, want 6", tr.Dropped())
	}
	spans := tr.snapshot()
	// The survivors are the newest four, oldest-first.
	for i, s := range spans {
		want := base.Add(time.Duration(6+i) * time.Millisecond)
		if !s.Start.Equal(want) {
			t.Errorf("span %d start = %v, want %v", i, s.Start, want)
		}
	}
}

func TestTraceHandler(t *testing.T) {
	tr := NewTracer(0)
	tr.Record(Span{Name: "job", Cat: "job", TID: 1, Start: time.Now(), Dur: time.Millisecond})
	srv := httptest.NewServer(tr.Handler())
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var b bytes.Buffer
	if _, err := b.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("content type %q", ct)
	}
	f := decodeTrace(t, b.Bytes())
	if len(f.TraceEvents) != 1 {
		t.Fatalf("got %d events, want 1", len(f.TraceEvents))
	}
}
