package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
)

// TestExpositionGolden pins the full text-0.0.4 rendering of a registry that
// exercises every instrument kind, labeled series, HELP escaping, and
// label-value escaping — byte for byte. Any formatting drift (bucket
// cumulation, +Inf placement, escape sequences, header order) fails here
// before it reaches a real Prometheus scraper.
func TestExpositionGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("jobs_total", "jobs accepted").Add(7)
	r.Counter(SeriesName("kernel_calls_total", "kernel", "cg_calc_w"), "per-kernel calls").Add(3)
	r.Counter(SeriesName("kernel_calls_total", "kernel", `odd"name\with`+"\n"), "per-kernel calls").Add(1)
	r.Gauge("depth", "queue depth\nsecond line \\ backslash").Set(2)
	r.GaugeFunc("live", "computed at scrape", func() float64 { return 4.5 })
	h := r.Histogram("lat_seconds", "latency", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.5, 0.5, 5, 50} {
		h.Observe(v)
	}

	const want = `# HELP jobs_total jobs accepted
# TYPE jobs_total counter
jobs_total 7
# HELP kernel_calls_total per-kernel calls
# TYPE kernel_calls_total counter
kernel_calls_total{kernel="cg_calc_w"} 3
kernel_calls_total{kernel="odd\"name\\with\n"} 1
# HELP depth queue depth\nsecond line \\ backslash
# TYPE depth gauge
depth 2
# HELP live computed at scrape
# TYPE live gauge
live 4.5
# HELP lat_seconds latency
# TYPE lat_seconds histogram
lat_seconds_bucket{le="0.1"} 1
lat_seconds_bucket{le="1"} 3
lat_seconds_bucket{le="10"} 4
lat_seconds_bucket{le="+Inf"} 5
lat_seconds_sum 56.05
lat_seconds_count 5
`
	var b strings.Builder
	r.WriteText(&b)
	if got := b.String(); got != want {
		t.Errorf("exposition drifted from golden output.\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

func TestEscapeLabelValue(t *testing.T) {
	for in, want := range map[string]string{
		`plain`:          `plain`,
		`a\b`:            `a\\b`,
		`say "hi"`:       `say \"hi\"`,
		"line\nbreak":    `line\nbreak`,
		"tab\tstays":     "tab\tstays", // only \, ", \n are escaped in text-0.0.4
		`\` + "\n" + `"`: `\\\n\"`,
	} {
		if got := EscapeLabelValue(in); got != want {
			t.Errorf("EscapeLabelValue(%q) = %q, want %q", in, got, want)
		}
	}
	if got := SeriesName("fam"); got != "fam" {
		t.Errorf("SeriesName with no labels = %q", got)
	}
	if got := SeriesName("fam", "a", `x"y`, "b", "z"); got != `fam{a="x\"y",b="z"}` {
		t.Errorf("SeriesName = %q", got)
	}
}

// TestHistogramBucketsMonotoneUnderRace hammers one histogram from many
// goroutines while scraping, asserting every scrape's buckets are
// non-decreasing in le and never exceed +Inf — the exact conformance bug the
// old cumulative-increment scheme had.
func TestHistogramBucketsMonotoneUnderRace(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", "", []float64{0.25, 0.5, 0.75, 1})
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			v := float64(seed)
			for {
				select {
				case <-stop:
					return
				default:
				}
				v = math.Mod(v*1103515245+12345, 1.25)
				h.Observe(v)
			}
		}(i)
	}
	for scrape := 0; scrape < 200; scrape++ {
		cum, count := h.snapshotCumulative()
		var prev int64
		for i, c := range cum {
			if c < prev {
				t.Fatalf("scrape %d: bucket %d decreased (%d after %d)", scrape, i, c, prev)
			}
			prev = c
		}
		if count < prev {
			t.Fatalf("scrape %d: +Inf %d < last bucket %d", scrape, count, prev)
		}
	}
	close(stop)
	wg.Wait()
}

func TestHistogramQuantile(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("q", "", []float64{1, 2, 4})
	if got := h.Quantile(0.5); got != 0 {
		t.Errorf("empty histogram quantile = %v, want 0", got)
	}
	// 10 samples in (0,1], 10 in (1,2]: the median sits at the 1.0 boundary
	// and p75 interpolates halfway into the (1,2] bucket.
	for i := 0; i < 10; i++ {
		h.Observe(0.5)
		h.Observe(1.5)
	}
	if got := h.Quantile(0.5); got != 1 {
		t.Errorf("p50 = %v, want 1", got)
	}
	if got := h.Quantile(0.75); math.Abs(got-1.5) > 1e-9 {
		t.Errorf("p75 = %v, want 1.5", got)
	}
	// Samples beyond the last bound clamp to it.
	for i := 0; i < 100; i++ {
		h.Observe(100)
	}
	if got := h.Quantile(0.99); got != 4 {
		t.Errorf("p99 with +Inf mass = %v, want clamp to 4", got)
	}
}
