package obs

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// atomicFloat is a lock-free float64 accumulator (CAS on the bit pattern),
// so counters and gauges can be bumped from solve hot paths without taking
// the registry lock.
type atomicFloat struct{ bits atomic.Uint64 }

func (f *atomicFloat) Add(v float64) {
	for {
		old := f.bits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if f.bits.CompareAndSwap(old, nw) {
			return
		}
	}
}

func (f *atomicFloat) Store(v float64) { f.bits.Store(math.Float64bits(v)) }
func (f *atomicFloat) Load() float64   { return math.Float64frombits(f.bits.Load()) }

// Counter is a monotonically increasing metric. Decreasing it is a
// programmer error the type does not police (exposition would still be
// well-formed), so keep Add arguments non-negative.
type Counter struct{ v atomicFloat }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds v, which must be non-negative for the series to stay monotone.
func (c *Counter) Add(v float64) { c.v.Add(v) }

// Value returns the current total.
func (c *Counter) Value() float64 { return c.v.Load() }

// Gauge is a metric that can go up and down (queue depth, jobs in flight).
type Gauge struct{ v atomicFloat }

// Set replaces the value.
func (g *Gauge) Set(v float64) { g.v.Store(v) }

// Add moves the value by v (negative to decrease).
func (g *Gauge) Add(v float64) { g.v.Add(v) }

// Inc adds one.
func (g *Gauge) Inc() { g.v.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.v.Add(-1) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return g.v.Load() }

// Histogram counts observations into buckets and renders them cumulatively,
// Prometheus-style: exposed bucket i counts observations <= UpperBounds[i],
// and the +Inf bucket equals the total count.
//
// Internally each bucket holds only its own band (non-cumulative) and the
// exposition prefix-sums a snapshot. That is what keeps a concurrent scrape
// conformant: a per-band snapshot prefix-summed is monotone by construction,
// whereas incrementing cumulative counters one by one (the previous scheme)
// let a scrape land mid-update and observe bucket counts that *decreased*
// with increasing le — invalid text-0.0.4 exposition that Prometheus'
// quantile math silently mangles.
type Histogram struct {
	bounds []float64 // ascending upper bounds, +Inf excluded
	counts []atomic.Int64
	sum    atomicFloat
	count  atomic.Int64
}

// Observe records one sample. The total count is incremented before the
// band so a scrape that reads bands first and the count second (as
// WriteText does) always sees +Inf >= every cumulative bucket.
func (h *Histogram) Observe(v float64) {
	h.count.Add(1)
	h.sum.Add(v)
	// First bound with v <= bound; v above every bound lands only in +Inf.
	if i := sort.SearchFloat64s(h.bounds, v); i < len(h.bounds) {
		h.counts[i].Add(1)
	}
}

// snapshotCumulative returns the cumulative bucket counts (one per bound),
// then the total count — read strictly after the bands so the rendered
// +Inf bucket can never undercut a bucket. The total may exceed the last
// cumulative bucket; the excess is the +Inf band.
func (h *Histogram) snapshotCumulative() ([]int64, int64) {
	cum := make([]int64, len(h.bounds))
	var run int64
	for i := range h.counts {
		run += h.counts[i].Load()
		cum[i] = run
	}
	return cum, h.count.Load()
}

// Quantile estimates the q-quantile (0 < q < 1) of the observed
// distribution by linear interpolation inside the owning bucket — the same
// estimate Prometheus' histogram_quantile computes server-side. Samples
// beyond the last finite bound clamp to it. Returns 0 with no observations.
func (h *Histogram) Quantile(q float64) float64 {
	cum, count := h.snapshotCumulative()
	if count == 0 || len(cum) == 0 {
		return 0
	}
	rank := q * float64(count)
	var prevCum int64
	var prevBound float64
	for i, c := range cum {
		if float64(c) >= rank {
			band := float64(c - prevCum)
			if band <= 0 {
				return h.bounds[i]
			}
			return prevBound + (h.bounds[i]-prevBound)*(rank-float64(prevCum))/band
		}
		prevCum, prevBound = c, h.bounds[i]
	}
	return h.bounds[len(h.bounds)-1]
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return h.sum.Load() }

// DefBuckets are the default latency buckets (seconds), matching the
// Prometheus client defaults so dashboards transfer.
var DefBuckets = []float64{.005, .01, .025, .05, .1, .25, .5, 1, 2.5, 5, 10}

// metric is one registered instrument.
type metric struct {
	family string // name before any {label} clause
	labels string // label clause including braces, or ""
	kind   string // "counter", "gauge", "histogram"
	c      *Counter
	g      *Gauge
	h      *Histogram
	gf     func() float64 // callback gauge; rendered live at scrape time
}

// Registry holds a set of named metrics and renders them in the Prometheus
// text exposition format. Metric names follow Prometheus conventions and may
// carry a literal label clause — Counter(`jobs_total{version="manual-omp"}`,
// ...) registers one series of the jobs_total family — with HELP/TYPE
// emitted once per family. Registration is get-or-create: asking for an
// existing name returns the existing instrument, so hot paths may re-resolve
// by name. Registering the same family under two different kinds panics
// (programmer error, caught at wiring time).
type Registry struct {
	mu      sync.Mutex
	metrics map[string]*metric // full name -> instrument
	help    map[string]string  // family -> help text
	kinds   map[string]string  // family -> kind
	order   []string           // full names, registration order
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		metrics: make(map[string]*metric),
		help:    make(map[string]string),
		kinds:   make(map[string]string),
	}
}

// splitName separates a metric name into family and label clause and
// validates the family against the Prometheus grammar.
func splitName(name string) (family, labels string) {
	family = name
	if i := strings.IndexByte(name, '{'); i >= 0 {
		family, labels = name[:i], name[i:]
		if !strings.HasSuffix(labels, "}") || len(labels) < 3 {
			panic(fmt.Sprintf("obs: malformed label clause in metric name %q", name))
		}
	}
	if family == "" {
		panic("obs: empty metric name")
	}
	for i, r := range family {
		ok := r == '_' || r == ':' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(i > 0 && r >= '0' && r <= '9')
		if !ok {
			panic(fmt.Sprintf("obs: invalid metric name %q", name))
		}
	}
	return family, labels
}

// register looks a full name up, creating it with mk on first use.
func (r *Registry) register(name, help, kind string, mk func() *metric) *metric {
	family, labels := splitName(name)
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.metrics[name]; ok {
		if m.kind != kind {
			panic(fmt.Sprintf("obs: metric %q already registered as %s, not %s", name, m.kind, kind))
		}
		return m
	}
	if k, ok := r.kinds[family]; ok && k != kind {
		panic(fmt.Sprintf("obs: metric family %q already registered as %s, not %s", family, k, kind))
	}
	m := mk()
	m.family, m.labels, m.kind = family, labels, kind
	r.metrics[name] = m
	r.kinds[family] = kind
	if _, ok := r.help[family]; !ok {
		r.help[family] = help
	}
	r.order = append(r.order, name)
	return m
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name, help string) *Counter {
	return r.register(name, help, "counter", func() *metric { return &metric{c: &Counter{}} }).c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name, help string) *Gauge {
	return r.register(name, help, "gauge", func() *metric { return &metric{g: &Gauge{}} }).g
}

// GaugeFunc registers a gauge whose value is computed by fn at every scrape
// — the bridge for state owned elsewhere (a tracer's drop counter, a cache's
// occupancy) that should be observable without a write on every change. The
// callback must be fast and safe for concurrent use. Re-registering an
// existing name keeps the first callback.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	r.register(name, help, "gauge", func() *metric { return &metric{gf: fn} })
}

// Histogram returns the named histogram, creating it on first use with the
// given ascending bucket upper bounds (nil takes DefBuckets). The bounds of
// an already-registered histogram are kept; they are fixed at creation.
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	return r.register(name, help, "histogram", func() *metric {
		if bounds == nil {
			bounds = DefBuckets
		}
		bs := append([]float64(nil), bounds...)
		sort.Float64s(bs)
		return &metric{h: &Histogram{bounds: bs, counts: make([]atomic.Int64, len(bs))}}
	}).h
}

// helpEscaper escapes HELP text per the text-0.0.4 format: backslash and
// newline only (double quotes are NOT escaped in help).
var helpEscaper = strings.NewReplacer(`\`, `\\`, "\n", `\n`)

// labelEscaper escapes a label value per the text-0.0.4 format: backslash,
// double-quote and newline. These are the only escape sequences the format
// defines — Go's %q also emits \t, \xNN and friends, which Prometheus
// parsers reject or misread, so label values must come through here.
var labelEscaper = strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)

// EscapeLabelValue returns s escaped for use inside a label-value quote per
// the Prometheus text exposition format.
func EscapeLabelValue(s string) string { return labelEscaper.Replace(s) }

// SeriesName builds a labeled series name from a family and key/value label
// pairs with conformant label-value escaping:
// SeriesName("kernel_calls_total", "kernel", `say "hi"`) ==
// `kernel_calls_total{kernel="say \"hi\""}`. Use it instead of hand-rolled
// fmt %q formatting when a label value is not a known-safe literal.
func SeriesName(family string, kv ...string) string {
	if len(kv) == 0 {
		return family
	}
	if len(kv)%2 != 0 {
		panic("obs: SeriesName needs key/value pairs")
	}
	var b strings.Builder
	b.WriteString(family)
	b.WriteByte('{')
	for i := 0; i < len(kv); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(kv[i])
		b.WriteString(`="`)
		b.WriteString(EscapeLabelValue(kv[i+1]))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// sampleName joins a family suffix and a label pair onto a series name:
// sampleName("x", `{a="b"}`, "_bucket", `le="1"`) == `x_bucket{a="b",le="1"}`.
func sampleName(family, labels, suffix, extra string) string {
	name := family + suffix
	switch {
	case labels == "" && extra == "":
		return name
	case labels == "":
		return name + "{" + extra + "}"
	case extra == "":
		return name + labels
	default:
		return name + strings.TrimSuffix(labels, "}") + "," + extra + "}"
	}
}

// WriteText renders every registered metric in the Prometheus text
// exposition format (version 0.0.4): one # HELP and # TYPE line per family,
// then the family's series in registration order.
func (r *Registry) WriteText(w io.Writer) {
	r.mu.Lock()
	names := append([]string(nil), r.order...)
	metrics := make([]*metric, len(names))
	for i, n := range names {
		metrics[i] = r.metrics[n]
	}
	help := make(map[string]string, len(r.help))
	for k, v := range r.help {
		help[k] = v
	}
	r.mu.Unlock()

	written := make(map[string]bool)
	emitHeader := func(m *metric) {
		if written[m.family] {
			return
		}
		written[m.family] = true
		if h := help[m.family]; h != "" {
			fmt.Fprintf(w, "# HELP %s %s\n", m.family, helpEscaper.Replace(h))
		}
		fmt.Fprintf(w, "# TYPE %s %s\n", m.family, m.kind)
	}
	// Group each family's series together even when registrations of other
	// families interleaved: first pass in registration order per family.
	for i, m := range metrics {
		if written[m.family] {
			continue
		}
		emitHeader(m)
		for _, mm := range metrics[i:] {
			if mm.family != m.family {
				continue
			}
			switch mm.kind {
			case "counter":
				fmt.Fprintf(w, "%s %v\n", sampleName(mm.family, mm.labels, "", ""), mm.c.Value())
			case "gauge":
				switch {
				case mm.gf != nil:
					fmt.Fprintf(w, "%s %v\n", sampleName(mm.family, mm.labels, "", ""), mm.gf())
				default:
					fmt.Fprintf(w, "%s %v\n", sampleName(mm.family, mm.labels, "", ""), mm.g.Value())
				}
			case "histogram":
				h := mm.h
				// Sum is read before the buckets so it never includes an
				// observation the bucket snapshot missed; the cumulative
				// snapshot reads the total count after the bands, keeping
				// le="+Inf" >= every bucket under concurrent Observes.
				sum := h.Sum()
				cum, count := h.snapshotCumulative()
				for bi, b := range h.bounds {
					fmt.Fprintf(w, "%s %d\n",
						sampleName(mm.family, mm.labels, "_bucket", `le="`+formatBound(b)+`"`),
						cum[bi])
				}
				fmt.Fprintf(w, "%s %d\n", sampleName(mm.family, mm.labels, "_bucket", `le="+Inf"`), count)
				fmt.Fprintf(w, "%s %v\n", sampleName(mm.family, mm.labels, "_sum", ""), sum)
				fmt.Fprintf(w, "%s %d\n", sampleName(mm.family, mm.labels, "_count", ""), count)
			}
		}
	}
}

// formatBound renders a bucket bound the way Prometheus does (no exponent
// for the usual latency bounds).
func formatBound(b float64) string {
	if b == math.Trunc(b) && math.Abs(b) < 1e15 {
		return fmt.Sprintf("%d", int64(b))
	}
	return fmt.Sprintf("%g", b)
}

// Handler serves the registry as a Prometheus scrape endpoint.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WriteText(w)
	})
}
