package obs

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// atomicFloat is a lock-free float64 accumulator (CAS on the bit pattern),
// so counters and gauges can be bumped from solve hot paths without taking
// the registry lock.
type atomicFloat struct{ bits atomic.Uint64 }

func (f *atomicFloat) Add(v float64) {
	for {
		old := f.bits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if f.bits.CompareAndSwap(old, nw) {
			return
		}
	}
}

func (f *atomicFloat) Store(v float64) { f.bits.Store(math.Float64bits(v)) }
func (f *atomicFloat) Load() float64   { return math.Float64frombits(f.bits.Load()) }

// Counter is a monotonically increasing metric. Decreasing it is a
// programmer error the type does not police (exposition would still be
// well-formed), so keep Add arguments non-negative.
type Counter struct{ v atomicFloat }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds v, which must be non-negative for the series to stay monotone.
func (c *Counter) Add(v float64) { c.v.Add(v) }

// Value returns the current total.
func (c *Counter) Value() float64 { return c.v.Load() }

// Gauge is a metric that can go up and down (queue depth, jobs in flight).
type Gauge struct{ v atomicFloat }

// Set replaces the value.
func (g *Gauge) Set(v float64) { g.v.Store(v) }

// Add moves the value by v (negative to decrease).
func (g *Gauge) Add(v float64) { g.v.Add(v) }

// Inc adds one.
func (g *Gauge) Inc() { g.v.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.v.Add(-1) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return g.v.Load() }

// Histogram counts observations into cumulative buckets, Prometheus-style:
// bucket i counts observations <= UpperBounds[i], and an implicit +Inf
// bucket equals the total count.
type Histogram struct {
	bounds []float64 // ascending upper bounds, +Inf excluded
	counts []atomic.Int64
	sum    atomicFloat
	count  atomic.Int64
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	for i, b := range h.bounds {
		if v <= b {
			h.counts[i].Add(1)
		}
	}
	h.sum.Add(v)
	h.count.Add(1)
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return h.sum.Load() }

// DefBuckets are the default latency buckets (seconds), matching the
// Prometheus client defaults so dashboards transfer.
var DefBuckets = []float64{.005, .01, .025, .05, .1, .25, .5, 1, 2.5, 5, 10}

// metric is one registered instrument.
type metric struct {
	family string // name before any {label} clause
	labels string // label clause including braces, or ""
	kind   string // "counter", "gauge", "histogram"
	c      *Counter
	g      *Gauge
	h      *Histogram
}

// Registry holds a set of named metrics and renders them in the Prometheus
// text exposition format. Metric names follow Prometheus conventions and may
// carry a literal label clause — Counter(`jobs_total{version="manual-omp"}`,
// ...) registers one series of the jobs_total family — with HELP/TYPE
// emitted once per family. Registration is get-or-create: asking for an
// existing name returns the existing instrument, so hot paths may re-resolve
// by name. Registering the same family under two different kinds panics
// (programmer error, caught at wiring time).
type Registry struct {
	mu      sync.Mutex
	metrics map[string]*metric // full name -> instrument
	help    map[string]string  // family -> help text
	kinds   map[string]string  // family -> kind
	order   []string           // full names, registration order
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		metrics: make(map[string]*metric),
		help:    make(map[string]string),
		kinds:   make(map[string]string),
	}
}

// splitName separates a metric name into family and label clause and
// validates the family against the Prometheus grammar.
func splitName(name string) (family, labels string) {
	family = name
	if i := strings.IndexByte(name, '{'); i >= 0 {
		family, labels = name[:i], name[i:]
		if !strings.HasSuffix(labels, "}") || len(labels) < 3 {
			panic(fmt.Sprintf("obs: malformed label clause in metric name %q", name))
		}
	}
	if family == "" {
		panic("obs: empty metric name")
	}
	for i, r := range family {
		ok := r == '_' || r == ':' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(i > 0 && r >= '0' && r <= '9')
		if !ok {
			panic(fmt.Sprintf("obs: invalid metric name %q", name))
		}
	}
	return family, labels
}

// register looks a full name up, creating it with mk on first use.
func (r *Registry) register(name, help, kind string, mk func() *metric) *metric {
	family, labels := splitName(name)
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.metrics[name]; ok {
		if m.kind != kind {
			panic(fmt.Sprintf("obs: metric %q already registered as %s, not %s", name, m.kind, kind))
		}
		return m
	}
	if k, ok := r.kinds[family]; ok && k != kind {
		panic(fmt.Sprintf("obs: metric family %q already registered as %s, not %s", family, k, kind))
	}
	m := mk()
	m.family, m.labels, m.kind = family, labels, kind
	r.metrics[name] = m
	r.kinds[family] = kind
	if _, ok := r.help[family]; !ok {
		r.help[family] = help
	}
	r.order = append(r.order, name)
	return m
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name, help string) *Counter {
	return r.register(name, help, "counter", func() *metric { return &metric{c: &Counter{}} }).c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name, help string) *Gauge {
	return r.register(name, help, "gauge", func() *metric { return &metric{g: &Gauge{}} }).g
}

// Histogram returns the named histogram, creating it on first use with the
// given ascending bucket upper bounds (nil takes DefBuckets). The bounds of
// an already-registered histogram are kept; they are fixed at creation.
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	return r.register(name, help, "histogram", func() *metric {
		if bounds == nil {
			bounds = DefBuckets
		}
		bs := append([]float64(nil), bounds...)
		sort.Float64s(bs)
		return &metric{h: &Histogram{bounds: bs, counts: make([]atomic.Int64, len(bs))}}
	}).h
}

// sampleName joins a family suffix and a label pair onto a series name:
// sampleName("x", `{a="b"}`, "_bucket", `le="1"`) == `x_bucket{a="b",le="1"}`.
func sampleName(family, labels, suffix, extra string) string {
	name := family + suffix
	switch {
	case labels == "" && extra == "":
		return name
	case labels == "":
		return name + "{" + extra + "}"
	case extra == "":
		return name + labels
	default:
		return name + strings.TrimSuffix(labels, "}") + "," + extra + "}"
	}
}

// WriteText renders every registered metric in the Prometheus text
// exposition format (version 0.0.4): one # HELP and # TYPE line per family,
// then the family's series in registration order.
func (r *Registry) WriteText(w io.Writer) {
	r.mu.Lock()
	names := append([]string(nil), r.order...)
	metrics := make([]*metric, len(names))
	for i, n := range names {
		metrics[i] = r.metrics[n]
	}
	help := make(map[string]string, len(r.help))
	for k, v := range r.help {
		help[k] = v
	}
	r.mu.Unlock()

	written := make(map[string]bool)
	emitHeader := func(m *metric) {
		if written[m.family] {
			return
		}
		written[m.family] = true
		if h := help[m.family]; h != "" {
			fmt.Fprintf(w, "# HELP %s %s\n", m.family, strings.ReplaceAll(h, "\n", " "))
		}
		fmt.Fprintf(w, "# TYPE %s %s\n", m.family, m.kind)
	}
	// Group each family's series together even when registrations of other
	// families interleaved: first pass in registration order per family.
	for i, m := range metrics {
		if written[m.family] {
			continue
		}
		emitHeader(m)
		for _, mm := range metrics[i:] {
			if mm.family != m.family {
				continue
			}
			switch mm.kind {
			case "counter":
				fmt.Fprintf(w, "%s %v\n", sampleName(mm.family, mm.labels, "", ""), mm.c.Value())
			case "gauge":
				fmt.Fprintf(w, "%s %v\n", sampleName(mm.family, mm.labels, "", ""), mm.g.Value())
			case "histogram":
				h := mm.h
				for bi, b := range h.bounds {
					fmt.Fprintf(w, "%s %d\n",
						sampleName(mm.family, mm.labels, "_bucket", fmt.Sprintf("le=%q", formatBound(b))),
						h.counts[bi].Load())
				}
				fmt.Fprintf(w, "%s %d\n", sampleName(mm.family, mm.labels, "_bucket", `le="+Inf"`), h.Count())
				fmt.Fprintf(w, "%s %v\n", sampleName(mm.family, mm.labels, "_sum", ""), h.Sum())
				fmt.Fprintf(w, "%s %d\n", sampleName(mm.family, mm.labels, "_count", ""), h.Count())
			}
		}
	}
}

// formatBound renders a bucket bound the way Prometheus does (no exponent
// for the usual latency bounds).
func formatBound(b float64) string {
	if b == math.Trunc(b) && math.Abs(b) < 1e15 {
		return fmt.Sprintf("%d", int64(b))
	}
	return fmt.Sprintf("%g", b)
}

// Handler serves the registry as a Prometheus scrape endpoint.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WriteText(w)
	})
}
