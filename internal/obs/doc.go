// Package obs is the observability layer of the serving stack: a
// dependency-free metrics registry with Prometheus text exposition and a
// bounded span tracer that exports Chrome trace-event JSON
// (chrome://tracing / Perfetto). It sits below internal/serve — which wires
// solve-pipeline counters, gauges and per-kernel spans into it — and has no
// imports beyond the standard library, so any package may publish into it
// without layering concerns.
//
// Concurrency and ownership: every type in this package is safe for
// concurrent use by any number of goroutines. A Registry owns its metric
// instruments (Counter, Gauge, Histogram are created by and live inside one
// Registry; instrument handles may be retained and updated lock-free from
// hot paths), and a Tracer owns its bounded span buffer (producers append
// under the Tracer's lock; the buffer is a ring, so a full tracer drops the
// oldest spans rather than blocking or growing). Exposition — WriteText,
// WriteJSON and the HTTP handlers — takes a consistent snapshot and never
// blocks producers for longer than one buffer copy.
package obs
