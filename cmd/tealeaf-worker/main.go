// Command tealeaf-worker is one rank of a supervised fleet job. It is not
// meant to be launched by hand: the fleet coordinator (teaserve's fleet
// mode, or fleet.RunJob) spawns it with a TEALEAF_FLEET_* environment
// describing the rank assignment, the world's socket addresses, the deck
// and the shared checkpoint file. The worker joins the socket-transport
// world, runs the deck SPMD alongside its sibling processes, streams
// liveness beats to the coordinator, and exits 0 on success — any solver or
// transport failure (a lost peer, unrecoverable corruption) is reported on
// the control socket and exits non-zero, which the coordinator turns into a
// checkpoint-based migration.
package main

import (
	"context"
	"fmt"
	"os"

	"github.com/warwick-hpsc/tealeaf-go/internal/fleet"
)

func main() {
	if !fleet.InWorkerEnv() {
		fmt.Fprintln(os.Stderr, "tealeaf-worker: no TEALEAF_FLEET_* assignment in the environment;")
		fmt.Fprintln(os.Stderr, "this binary is spawned by the fleet coordinator, not launched directly")
		os.Exit(2)
	}
	if err := fleet.RunWorkerFromEnv(context.Background(), os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
