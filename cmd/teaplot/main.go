// Command teaplot renders the modeled figure data as ASCII bar charts, a
// quick visual check of the reproduced Figures 1 and 2 without leaving the
// terminal.
//
// Usage:
//
//	teaplot -figure 1a     # 1000^2 CPU versions
//	teaplot -figure 2b     # 4000^2 GPU versions
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"github.com/warwick-hpsc/tealeaf-go/internal/perfmodel"
	"github.com/warwick-hpsc/tealeaf-go/internal/registry"
)

const barWidth = 48

func main() {
	fig := flag.String("figure", "1a", "which figure to draw: 1a, 1b, 2a, 2b")
	flag.Parse()
	var n int
	var arch registry.Arch
	switch *fig {
	case "1a":
		n, arch = 1000, registry.CPU
	case "1b":
		n, arch = 1000, registry.GPU
	case "2a":
		n, arch = 4000, registry.CPU
	case "2b":
		n, arch = 4000, registry.GPU
	default:
		fmt.Fprintf(os.Stderr, "teaplot: unknown figure %q\n", *fig)
		os.Exit(2)
	}
	draw(n, arch)
}

func draw(n int, arch registry.Arch) {
	wl := perfmodel.BM(n)
	type bar struct {
		label   string
		machine perfmodel.MachineID
		seconds float64
	}
	var bars []bar
	maxSec := 0.0
	for _, v := range registry.ByArch(arch) {
		for _, m := range perfmodel.Machines() {
			if (arch == registry.GPU) != m.IsGPU || !perfmodel.Supported(v.Name, m.ID) {
				continue
			}
			est, err := perfmodel.Time(v.Name, m, wl)
			if err != nil {
				continue
			}
			bars = append(bars, bar{v.Name, m.ID, est.Seconds})
			if est.Seconds > maxSec {
				maxSec = est.Seconds
			}
		}
	}
	fmt.Printf("%d^2 dataset (%s) — modeled seconds\n\n", n, arch)
	for _, b := range bars {
		w := int(b.seconds / maxSec * barWidth)
		if w < 1 {
			w = 1
		}
		fmt.Printf("%-20s %-5s |%s %.2f\n", b.label, b.machine, strings.Repeat("#", w), b.seconds)
	}
}
