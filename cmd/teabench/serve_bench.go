package main

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"strconv"
	"strings"
	"sync"
	"time"

	"github.com/warwick-hpsc/tealeaf-go/internal/config"
	"github.com/warwick-hpsc/tealeaf-go/internal/serve"
)

// benchServeJSONFile is where -json drops the serving-benchmark record
// (repo root when teabench runs from there, as `make bench-serve` does).
const benchServeJSONFile = "BENCH_serve.json"

// serveBenchConfig records the knobs the benchmark ran with, so a stored
// BENCH_serve.json is self-describing.
type serveBenchConfig struct {
	Workers       int      `json:"workers"`
	QueueSize     int      `json:"queue_size"`
	CacheSize     int      `json:"cache_size"`
	BatchMaxCells int      `json:"batch_max_cells"`
	BatchMaxJobs  int      `json:"batch_max_jobs"`
	Versions      []string `json:"versions"`
	Sched         string   `json:"sched"`
	Jobs          int      `json:"jobs"`
	HotDecks      int      `json:"hot_decks"`
	HotFraction   float64  `json:"hot_fraction"`
}

// serveBenchResult is the BENCH_serve.json schema (documented in
// docs/OPERATIONS.md). Every counter is read back from the /metrics
// exposition — the numbers are what an operator's scraper would see.
type serveBenchResult struct {
	Config         serveBenchConfig `json:"config"`
	ElapsedSeconds float64          `json:"elapsed_seconds"`
	JobsPerSec     float64          `json:"jobs_per_sec"`
	Completed      float64          `json:"completed"`
	Solves         float64          `json:"solves"`
	CacheHits      float64          `json:"cache_hits"`
	Followers      float64          `json:"followers"`
	Batches        float64          `json:"batches"`
	BatchedJobs    float64          `json:"batched_jobs"`
	CacheHitRatio  float64          `json:"cache_hit_ratio"`
	LatencyP50     float64          `json:"latency_p50_seconds"`
	LatencyP99     float64          `json:"latency_p99_seconds"`
	SchedDecisions float64          `json:"sched_decisions"`
	PredErrP50     float64          `json:"pred_err_ratio_p50"`
	PredErrP99     float64          `json:"pred_err_ratio_p99"`
	Reconciles     bool             `json:"reconciles"` // completed == solves+followers+hits
}

// serveBench drives the job service the way the serving load test does — a
// mixed stream of hot (repeated) and unique decks — and reports sustained
// throughput, the cache-hit ratio, and latency quantiles, all derived from
// the /metrics exposition rather than private counters.
func serveBench(w io.Writer, jsonOut bool) {
	cfg := serveBenchConfig{
		Workers:       4,
		QueueSize:     64,
		CacheSize:     64,
		BatchMaxCells: 4096,
		BatchMaxJobs:  4,
		Versions:      []string{"manual-serial"},
		Sched:         serve.SchedPredictive,
		Jobs:          400,
		HotDecks:      4,
		HotFraction:   0.75,
	}
	s, err := serve.New(serve.Options{
		QueueSize:     cfg.QueueSize,
		Workers:       cfg.Workers,
		Versions:      cfg.Versions,
		Sched:         cfg.Sched,
		CacheSize:     cfg.CacheSize,
		BatchMaxCells: cfg.BatchMaxCells,
		BatchMaxJobs:  cfg.BatchMaxJobs,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "teabench: %v\n", err)
		return
	}
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	bmDeck := func(n, steps int) string {
		c := config.BenchmarkN(n)
		c.EndStep = steps
		return c.Summary()
	}
	hot := make([]string, cfg.HotDecks)
	for i := range hot {
		hot[i] = bmDeck(24, i+1)
	}

	const clients = 8
	perClient := cfg.Jobs / clients
	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				u := c*perClient + i
				deckText := hot[u%cfg.HotDecks]
				if u%4 == 3 { // the 1-HotFraction share: never-repeating decks
					deckText = bmDeck(16+u%40, 1+u/40)
				}
				for {
					_, err := s.Submit(serve.JobSpec{Deck: deckText})
					if err == nil {
						break
					}
					if !errors.Is(err, serve.ErrQueueFull) {
						fmt.Fprintf(os.Stderr, "teabench: submit: %v\n", err)
						return
					}
					time.Sleep(2 * time.Millisecond)
				}
			}
		}(c)
	}
	wg.Wait()

	// A bounded scrape client: a wedged /metrics endpoint must fail the
	// experiment loudly, not hang the benchmark run.
	scrapeClient := &http.Client{Timeout: 30 * time.Second}
	scrapeOnce := func() string {
		resp, err := scrapeClient.Get(ts.URL + "/metrics")
		if err != nil {
			fmt.Fprintf(os.Stderr, "teabench: scrape: %v\n", err)
			return ""
		}
		defer resp.Body.Close()
		var sb strings.Builder
		io.Copy(&sb, resp.Body)
		return sb.String()
	}
	deadline := time.Now().Add(5 * time.Minute)
	exp := scrapeOnce()
	for seriesValue(exp, "teaserve_jobs_completed_total") < float64(cfg.Jobs) {
		if time.Now().After(deadline) {
			fmt.Fprintln(os.Stderr, "teabench: serve benchmark timed out waiting for drain")
			return
		}
		time.Sleep(20 * time.Millisecond)
		exp = scrapeOnce()
	}
	elapsed := time.Since(start)

	res := serveBenchResult{
		Config:         cfg,
		ElapsedSeconds: elapsed.Seconds(),
		JobsPerSec:     float64(cfg.Jobs) / elapsed.Seconds(),
		Completed:      seriesValue(exp, "teaserve_jobs_completed_total"),
		Solves:         seriesValue(exp, "teaserve_solves_total"),
		CacheHits:      seriesValue(exp, "teaserve_cache_hits_total"),
		Followers:      seriesValue(exp, "teaserve_singleflight_followers_total"),
		Batches:        seriesValue(exp, "teaserve_batches_total"),
		BatchedJobs:    seriesValue(exp, "teaserve_batch_jobs_total"),
		LatencyP50:     histogramQuantile(exp, "teaserve_solve_seconds", 0.50),
		LatencyP99:     histogramQuantile(exp, "teaserve_solve_seconds", 0.99),
		SchedDecisions: seriesValue(exp, `teaserve_sched_decisions_total{policy="predictive"}`),
		PredErrP50:     histogramQuantile(exp, "teaserve_sched_prediction_error_ratio", 0.50),
		PredErrP99:     histogramQuantile(exp, "teaserve_sched_prediction_error_ratio", 0.99),
	}
	if res.Completed > 0 {
		res.CacheHitRatio = (res.CacheHits + res.Followers) / res.Completed
	}
	res.Reconciles = res.Completed == res.Solves+res.Followers+res.CacheHits

	if jsonOut {
		buf, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "teabench: %v\n", err)
			return
		}
		buf = append(buf, '\n')
		w.Write(buf)
		if err := os.WriteFile(benchServeJSONFile, buf, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "teabench: %v\n", err)
		} else {
			fmt.Fprintf(os.Stderr, "teabench: wrote %s\n", benchServeJSONFile)
		}
		return
	}
	fmt.Fprintf(w, "\n## Serving load — %d jobs (%d hot decks, %.0f%% hot), %d workers, cache %d\n\n",
		cfg.Jobs, cfg.HotDecks, cfg.HotFraction*100, cfg.Workers, cfg.CacheSize)
	fmt.Fprintf(w, "  throughput    %8.0f jobs/s  (%.2fs wall)\n", res.JobsPerSec, res.ElapsedSeconds)
	fmt.Fprintf(w, "  completed     %8.0f\n", res.Completed)
	fmt.Fprintf(w, "  solves        %8.0f  (solver invocations)\n", res.Solves)
	fmt.Fprintf(w, "  cache hits    %8.0f\n", res.CacheHits)
	fmt.Fprintf(w, "  collapsed     %8.0f  (singleflight followers)\n", res.Followers)
	fmt.Fprintf(w, "  micro-batches %8.0f  covering %.0f jobs\n", res.Batches, res.BatchedJobs)
	fmt.Fprintf(w, "  hit ratio     %8.2f\n", res.CacheHitRatio)
	fmt.Fprintf(w, "  latency p50   %8.4fs   p99 %8.4fs\n", res.LatencyP50, res.LatencyP99)
	fmt.Fprintf(w, "  sched (%s) %8.0f decisions, prediction error p50 %.2fx p99 %.2fx\n",
		cfg.Sched, res.SchedDecisions, res.PredErrP50, res.PredErrP99)
	fmt.Fprintf(w, "  reconciles    %8v  (completed == solves + followers + hits)\n", res.Reconciles)
}

// seriesValue pulls one scalar series from a Prometheus text exposition.
func seriesValue(exposition, name string) float64 {
	for _, line := range strings.Split(exposition, "\n") {
		if rest, ok := strings.CutPrefix(line, name+" "); ok {
			v, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
			if err == nil {
				return v
			}
		}
	}
	return 0
}

// histogramQuantile recovers a quantile from a histogram's cumulative
// bucket series the way promQL's histogram_quantile does: find the first
// bucket whose cumulative count covers the target rank and interpolate
// linearly inside it.
func histogramQuantile(exposition, name string, q float64) float64 {
	type bucket struct {
		le  float64
		cum float64
	}
	var buckets []bucket
	prefix := name + `_bucket{le="`
	for _, line := range strings.Split(exposition, "\n") {
		rest, ok := strings.CutPrefix(line, prefix)
		if !ok {
			continue
		}
		boundStr, countStr, ok := strings.Cut(rest, `"} `)
		if !ok {
			continue
		}
		var le float64
		if boundStr == "+Inf" {
			le = 0 // handled below: the overflow bucket clamps to the last finite bound
		} else {
			v, err := strconv.ParseFloat(boundStr, 64)
			if err != nil {
				continue
			}
			le = v
		}
		cum, err := strconv.ParseFloat(strings.TrimSpace(countStr), 64)
		if err != nil {
			continue
		}
		buckets = append(buckets, bucket{le: le, cum: cum})
	}
	if len(buckets) == 0 {
		return 0
	}
	total := buckets[len(buckets)-1].cum
	if total == 0 {
		return 0
	}
	rank := q * total
	prevBound, prevCum := 0.0, 0.0
	for i, b := range buckets {
		if i == len(buckets)-1 { // +Inf: no upper bound to interpolate toward
			return prevBound
		}
		if b.cum >= rank {
			if b.cum == prevCum {
				return b.le
			}
			return prevBound + (b.le-prevBound)*(rank-prevCum)/(b.cum-prevCum)
		}
		prevBound, prevCum = b.le, b.cum
	}
	return prevBound
}
