package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"

	"github.com/warwick-hpsc/tealeaf-go/internal/config"
	"github.com/warwick-hpsc/tealeaf-go/internal/perfmodel"
	"github.com/warwick-hpsc/tealeaf-go/internal/portability"
	"github.com/warwick-hpsc/tealeaf-go/internal/registry"
)

// benchPortabilityJSONFile is where -json drops the portability record
// (repo root when teabench runs from there, as `make bench-portability`
// does). The `host` rows double as predictor seed data: teaserve
// -bench-dir ingests them at startup, and the CI portability gate
// validates them against the committed baseline.
const benchPortabilityJSONFile = "BENCH_portability.json"

// portabilityHostRow is one version's measured run on this host.
type portabilityHostRow struct {
	Version     string  `json:"version"`
	Group       string  `json:"group"`
	WallSeconds float64 `json:"wall_seconds"`
	Iterations  int     `json:"iterations"`
	Efficiency  float64 `json:"efficiency"`
	Error       string  `json:"error,omitempty"`
}

// portabilityBenchReport is the BENCH_portability.json schema (documented
// in docs/PORTABILITY.md). Mesh/steps/host match the perfmodel bench-file
// reader, so the artefact feeds straight back into the predictor. The
// modeled section is a pure function of the calibration tables — the CI
// gate recomputes it and fails on drift; the host section is measured and
// therefore validated for shape, not for absolute times.
type portabilityBenchReport struct {
	Mesh          int                  `json:"mesh"`
	Steps         int                  `json:"steps"`
	Host          []portabilityHostRow `json:"host"`
	HostPennycook map[string]float64   `json:"host_pennycook"`
	Modeled       portability.Report   `json:"modeled"`
}

// modeledPortabilityReport builds the deterministic half of the dashboard:
// every registered version priced by the static roofline models on the
// paper's Table II machines, scored over the CPU-only and CPU+GPU sets.
// This is exactly what /portability serves for those platforms, minus the
// live host column.
func modeledPortabilityReport() portability.Report {
	w := perfmodel.BM(1000)
	work := float64(w.Cells()) * float64(w.Steps*w.ItersPerStep)
	platforms := []string{string(perfmodel.Xeon), string(perfmodel.KNL), string(perfmodel.P100)}
	sets := map[string][]string{
		"cpu":    {string(perfmodel.Xeon), string(perfmodel.KNL)},
		"cpugpu": {string(perfmodel.Xeon), string(perfmodel.KNL), string(perfmodel.P100)},
	}
	groups := make(map[string][]string)
	rates := make(map[string]map[string]portability.Rate)
	for _, v := range registry.All() {
		if v.Name != "manual-serial" {
			groups[v.Group] = append(groups[v.Group], v.Name)
		}
		byPlatform := make(map[string]portability.Rate)
		for _, m := range perfmodel.Machines() {
			if !perfmodel.Supported(v.Name, m.ID) {
				continue
			}
			est, err := perfmodel.Time(v.Name, m, w)
			if err != nil {
				continue
			}
			byPlatform[string(m.ID)] = portability.Rate{SecPerWork: est.Seconds / work, Source: "model"}
		}
		rates[v.Name] = byPlatform
	}
	return portability.BuildReport(rates, platforms, groups, sets)
}

// portabilityBench runs every registered version at the given mesh on this
// host, derives application efficiencies from the measured seconds per
// cell-iteration (best version = 1.0), folds them into per-family
// harmonic-mean scores, and appends the deterministic modeled report. With
// jsonOut the record lands in BENCH_portability.json.
func portabilityBench(w io.Writer, n, steps int, jsonOut bool) {
	cfg := config.BenchmarkN(n)
	cfg.EndStep = steps
	rep := portabilityBenchReport{Mesh: n, Steps: steps, HostPennycook: map[string]float64{}}
	bestRate := 0.0
	for _, v := range registry.All() {
		row := portabilityHostRow{Version: v.Name, Group: v.Group}
		d, res, err := runVersion(v, cfg)
		if err != nil {
			row.Error = err.Error()
			rep.Host = append(rep.Host, row)
			continue
		}
		row.WallSeconds = d.Seconds()
		row.Iterations = res.TotalIterations
		rep.Host = append(rep.Host, row)
		if row.Iterations > 0 {
			rate := row.WallSeconds / (float64(n*n) * float64(row.Iterations))
			if bestRate == 0 || rate < bestRate {
				bestRate = rate
			}
		}
	}
	// Application efficiency: the fastest measured seconds-per-cell-iteration
	// divided by this version's — the same normalisation the live dashboard
	// applies to its rate table.
	byGroup := map[string][]portability.Efficiency{}
	for i := range rep.Host {
		r := &rep.Host[i]
		if r.Error != "" || r.Iterations <= 0 {
			continue
		}
		rate := r.WallSeconds / (float64(n*n) * float64(r.Iterations))
		r.Efficiency = bestRate / rate
		if r.Version != "manual-serial" {
			byGroup[r.Group] = append(byGroup[r.Group],
				portability.Efficiency{Platform: r.Version, Value: r.Efficiency, Supported: true})
		}
	}
	// Per-family score: the harmonic mean of the members' host
	// efficiencies (Pennycook's formula with versions as the set).
	for g, effs := range byGroup {
		rep.HostPennycook[g] = portability.Pennycook(effs)
	}
	rep.Modeled = modeledPortabilityReport()

	if jsonOut {
		buf, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "teabench: %v\n", err)
			return
		}
		buf = append(buf, '\n')
		w.Write(buf)
		if err := os.WriteFile(benchPortabilityJSONFile, buf, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "teabench: %v\n", err)
		} else {
			fmt.Fprintf(os.Stderr, "teabench: wrote %s\n", benchPortabilityJSONFile)
		}
		return
	}

	fmt.Fprintf(w, "\n## Portability — measured host efficiencies, %d^2, %d steps (real execution)\n\n", n, steps)
	fmt.Fprintf(w, "| %-18s | %-6s | %12s | %6s | %10s |\n", "version", "group", "wall (s)", "iters", "efficiency")
	fmt.Fprintf(w, "|%s|%s|%s|%s|%s|\n", dashes(20), dashes(8), dashes(14), dashes(8), dashes(12))
	for _, r := range rep.Host {
		if r.Error != "" {
			fmt.Fprintf(w, "| %-18s | %-6s | error: %s |\n", r.Version, r.Group, r.Error)
			continue
		}
		fmt.Fprintf(w, "| %-18s | %-6s | %12.3f | %6d | %10.3f |\n",
			r.Version, r.Group, r.WallSeconds, r.Iterations, r.Efficiency)
	}
	fmt.Fprintf(w, "\nPer-family host score (harmonic mean of member efficiencies):\n\n")
	gs := make([]string, 0, len(rep.HostPennycook))
	for g := range rep.HostPennycook {
		gs = append(gs, g)
	}
	sort.Strings(gs)
	for _, g := range gs {
		fmt.Fprintf(w, "  %-8s %.3f\n", g, rep.HostPennycook[g])
	}
	fmt.Fprintf(w, "\nModeled P(a,p,H) per family (Table II machines, deterministic):\n\n")
	for _, row := range rep.Modeled.Groups {
		fmt.Fprintf(w, "  %-8s cpu=%.3f cpugpu=%.3f\n", row.Group, row.P["cpu"], row.P["cpugpu"])
	}
}
