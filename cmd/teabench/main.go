// Command teabench regenerates the paper's evaluation artefacts: the
// runtime bar charts of Figures 1a/1b (1000^2) and 2a/2b (4000^2), the
// implementation and machine inventories of Tables I and II, the
// performance-portability analysis of Table III, the Section IV-C system
// analysis, and two ablations (OPS cross-iteration loop-chain tiling, CUDA
// block size).
//
// Paper-scale numbers come from the calibrated machine model
// (internal/perfmodel) because the paper's Xeon/KNL/P100 are simulated
// here — see DESIGN.md. Every experiment can also run the real Go ports at
// a reduced mesh (-measure) so modeled claims are backed by executable
// code.
//
// Usage:
//
//	teabench -experiment all            # full report (markdown-ish text)
//	teabench -experiment fig2a          # one artefact
//	teabench -experiment measured -n 192
//	teabench -experiment tiling -n 256
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"strings"
	"time"

	"github.com/warwick-hpsc/tealeaf-go/internal/config"
	"github.com/warwick-hpsc/tealeaf-go/internal/driver"
	"github.com/warwick-hpsc/tealeaf-go/internal/grid"
	"github.com/warwick-hpsc/tealeaf-go/internal/ops"
	"github.com/warwick-hpsc/tealeaf-go/internal/perfmodel"
	"github.com/warwick-hpsc/tealeaf-go/internal/portability"
	"github.com/warwick-hpsc/tealeaf-go/internal/profiler"
	"github.com/warwick-hpsc/tealeaf-go/internal/registry"
	"github.com/warwick-hpsc/tealeaf-go/internal/simgpu"
	"github.com/warwick-hpsc/tealeaf-go/internal/solver"

	opsport "github.com/warwick-hpsc/tealeaf-go/internal/backends/opsport"
)

func main() {
	exp := flag.String("experiment", "all", "experiment id: all, fig1a, fig1b, fig2a, fig2b, table1, table2, table3, sysanalysis, knlmodes, scaling, tiling, blocksize, measured, cgfusion, serve, portability")
	n := flag.Int("n", 192, "mesh edge for measured (real-execution) experiments")
	steps := flag.Int("steps", 3, "time steps for measured experiments")
	jsonOut := flag.Bool("json", false, "emit machine-readable JSON (tiling, cgfusion, serve and portability only)")
	tileX := flag.Int("tile-x", 0, "tile width for the tiling experiment (0: default 128)")
	tileY := flag.Int("tile-y", 0, "tile height for the tiling experiment (0: default 32)")
	tileAuto := flag.Bool("tile-auto", false, "size the explicit tiling arm from the detected cache topology instead of -tile-x/-tile-y")
	flag.Parse()

	w := os.Stdout
	switch *exp {
	case "all":
		table1(w)
		table2(w)
		figure(w, "Figure 1a — 1000^2 dataset, CPU versions (modeled seconds)", 1000, registry.CPU)
		figure(w, "Figure 1b — 1000^2 dataset, GPU versions (modeled seconds)", 1000, registry.GPU)
		figure(w, "Figure 2a — 4000^2 dataset, CPU versions (modeled seconds)", 4000, registry.CPU)
		figure(w, "Figure 2b — 4000^2 dataset, GPU versions (modeled seconds)", 4000, registry.GPU)
		table3(w)
		sysAnalysis(w)
		knlModes(w)
		measured(w, *n, *steps)
		tilingChains(w, *n, *tileX, *tileY, *tileAuto, false)
		blockSizeAblation(w, *n)
		scaling(w, *n, *steps)
	case "fig1a":
		figure(w, "Figure 1a — 1000^2 dataset, CPU versions (modeled seconds)", 1000, registry.CPU)
	case "fig1b":
		figure(w, "Figure 1b — 1000^2 dataset, GPU versions (modeled seconds)", 1000, registry.GPU)
	case "fig2a":
		figure(w, "Figure 2a — 4000^2 dataset, CPU versions (modeled seconds)", 4000, registry.CPU)
	case "fig2b":
		figure(w, "Figure 2b — 4000^2 dataset, GPU versions (modeled seconds)", 4000, registry.GPU)
	case "table1":
		table1(w)
	case "table2":
		table2(w)
	case "table3":
		table3(w)
	case "sysanalysis":
		sysAnalysis(w)
	case "knlmodes":
		knlModes(w)
	case "scaling":
		scaling(w, *n, *steps)
	case "tiling":
		tilingChains(w, *n, *tileX, *tileY, *tileAuto, *jsonOut)
	case "blocksize":
		blockSizeAblation(w, *n)
	case "measured":
		measured(w, *n, *steps)
	case "cgfusion":
		cgFusion(w, *n, *jsonOut)
	case "serve":
		serveBench(w, *jsonOut)
	case "portability":
		portabilityBench(w, *n, *steps, *jsonOut)
	default:
		fmt.Fprintf(os.Stderr, "teabench: unknown experiment %q\n", *exp)
		os.Exit(2)
	}
}

// --- Table I: implementation inventory ---------------------------------------

func table1(w io.Writer) {
	fmt.Fprintf(w, "\n## Table I — TeaLeaf versions (implementation matrix)\n\n")
	fmt.Fprintf(w, "| %-18s | %-6s | %-16s | %-4s | %s |\n", "version", "group", "model", "arch", "configuration")
	fmt.Fprintf(w, "|%s|%s|%s|%s|%s|\n", dashes(20), dashes(8), dashes(18), dashes(6), dashes(40))
	for _, v := range registry.All() {
		fmt.Fprintf(w, "| %-18s | %-6s | %-16s | %-4s | %s |\n", v.Name, v.Group, v.Model, v.Arch, v.Notes)
	}
}

// --- Table II: machine inventory ---------------------------------------------

func table2(w io.Writer) {
	fmt.Fprintf(w, "\n## Table II — modeled systems\n\n")
	fmt.Fprintf(w, "| %-26s | %-9s | %-11s | %s |\n", "system", "peak GB/s", "peak GFLOPs", "key information")
	fmt.Fprintf(w, "|%s|%s|%s|%s|\n", dashes(28), dashes(11), dashes(13), dashes(60))
	for _, m := range perfmodel.Machines() {
		fmt.Fprintf(w, "| %-26s | %9.1f | %11.0f | %s |\n", m.Name, m.PeakBW, m.PeakGFLOPs, m.Info)
	}
}

// --- Figures 1 and 2 ----------------------------------------------------------

func machinesFor(arch registry.Arch) []perfmodel.Machine {
	var out []perfmodel.Machine
	for _, m := range perfmodel.Machines() {
		if (arch == registry.GPU) == m.IsGPU {
			out = append(out, m)
		}
	}
	return out
}

func figure(w io.Writer, title string, n int, arch registry.Arch) {
	fmt.Fprintf(w, "\n## %s\n\n", title)
	wl := perfmodel.BM(n)
	machines := machinesFor(arch)
	fmt.Fprintf(w, "| %-18s", "version")
	for _, m := range machines {
		fmt.Fprintf(w, " | %12s", string(m.ID))
	}
	fmt.Fprintf(w, " |\n|%s|", dashes(20))
	for range machines {
		fmt.Fprintf(w, "%s|", dashes(14))
	}
	fmt.Fprintln(w)
	for _, v := range registry.ByArch(arch) {
		fmt.Fprintf(w, "| %-18s", v.Name)
		for _, m := range machines {
			if !perfmodel.Supported(v.Name, m.ID) {
				fmt.Fprintf(w, " | %12s", "n/a")
				continue
			}
			est, err := perfmodel.Time(v.Name, m, wl)
			if err != nil {
				fmt.Fprintf(w, " | %12s", "err")
				continue
			}
			fmt.Fprintf(w, " | %12.2f", est.Seconds)
		}
		fmt.Fprintf(w, " |\n")
	}
	fmt.Fprintf(w, "\n(workload: %d steps x ~%d CG iterations/step, %.1f GB footprint)\n",
		wl.Steps, wl.ItersPerStep, wl.FootprintBytes()/1e9)
}

// --- Table III ---------------------------------------------------------------

var families = []struct {
	Name     string
	Versions []string
}{
	{"Manual", []string{"manual-omp", "manual-mpi", "manual-mpi-omp", "manual-openacc-cpu", "manual-cuda", "manual-openacc-gpu"}},
	{"OPS", []string{"ops-openmp", "ops-mpi", "ops-mpi-omp", "ops-mpi-tiled", "ops-cuda", "ops-openacc"}},
	{"Kokkos", []string{"kokkos-openmp", "kokkos-cuda"}},
	{"RAJA", []string{"raja-openmp", "raja-cuda"}},
}

// bestEstimate returns the family's fastest modeled estimate on machine m.
func bestEstimate(versions []string, m perfmodel.Machine, wl perfmodel.Workload) (perfmodel.Estimate, bool) {
	best := perfmodel.Estimate{Seconds: math.Inf(1)}
	found := false
	for _, v := range versions {
		if !perfmodel.Supported(v, m.ID) {
			continue
		}
		est, err := perfmodel.Time(v, m, wl)
		if err != nil {
			continue
		}
		if est.Seconds < best.Seconds {
			best, found = est, true
		}
	}
	return best, found
}

func table3(w io.Writer) {
	fmt.Fprintf(w, "\n## Table III — performance portability, 4000^2 mesh\n\n")
	wl := perfmodel.BM(4000)
	machines := perfmodel.Machines()

	type row struct {
		name    string
		comEff  map[perfmodel.MachineID]float64
		bwEff   map[perfmodel.MachineID]float64
		appEff  map[perfmodel.MachineID]float64
		seconds map[perfmodel.MachineID]float64
	}
	var rows []row
	bestTime := map[perfmodel.MachineID]float64{}
	for _, fam := range families {
		r := row{
			name:    fam.Name,
			comEff:  map[perfmodel.MachineID]float64{},
			bwEff:   map[perfmodel.MachineID]float64{},
			appEff:  map[perfmodel.MachineID]float64{},
			seconds: map[perfmodel.MachineID]float64{},
		}
		for _, m := range machines {
			est, ok := bestEstimate(fam.Versions, m, wl)
			if !ok {
				continue
			}
			r.comEff[m.ID] = est.ComputeEff
			r.bwEff[m.ID] = est.BWEff
			r.seconds[m.ID] = est.Seconds
			if b, ok := bestTime[m.ID]; !ok || est.Seconds < b {
				bestTime[m.ID] = est.Seconds
			}
		}
		rows = append(rows, r)
	}
	for i := range rows {
		for id, s := range rows[i].seconds {
			rows[i].appEff[id] = bestTime[id] / s
		}
	}

	fmt.Fprintf(w, "| %-7s | Xeon Com%% | Xeon BW%% | Xeon App%% | KNL Com%% | KNL BW%% | KNL App%% | P(CPU) App%% | P100 Com%% | P100 BW%% | P100 App%% | P(CPUuGPU) App%% |\n", "family")
	fmt.Fprintf(w, "|%s|%s|%s|%s|%s|%s|%s|%s|%s|%s|%s|%s|\n",
		dashes(9), dashes(11), dashes(10), dashes(11), dashes(10), dashes(9), dashes(10), dashes(13), dashes(11), dashes(10), dashes(12), dashes(17))
	for _, r := range rows {
		pCPU := portability.Pennycook([]portability.Efficiency{
			{Platform: "xeon", Value: r.appEff[perfmodel.Xeon], Supported: r.appEff[perfmodel.Xeon] > 0},
			{Platform: "knl", Value: r.appEff[perfmodel.KNL], Supported: r.appEff[perfmodel.KNL] > 0},
		})
		pAll := portability.Pennycook([]portability.Efficiency{
			{Platform: "xeon", Value: r.appEff[perfmodel.Xeon], Supported: r.appEff[perfmodel.Xeon] > 0},
			{Platform: "knl", Value: r.appEff[perfmodel.KNL], Supported: r.appEff[perfmodel.KNL] > 0},
			{Platform: "p100", Value: r.appEff[perfmodel.P100], Supported: r.appEff[perfmodel.P100] > 0},
		})
		fmt.Fprintf(w, "| %-7s | %9.2f | %8.2f | %9.2f | %8.2f | %7.2f | %8.2f | %11.2f | %9.2f | %8.2f | %10.2f | %15.2f |\n",
			r.name,
			100*r.comEff[perfmodel.Xeon], 100*r.bwEff[perfmodel.Xeon], 100*r.appEff[perfmodel.Xeon],
			100*r.comEff[perfmodel.KNL], 100*r.bwEff[perfmodel.KNL], 100*r.appEff[perfmodel.KNL],
			100*pCPU,
			100*r.comEff[perfmodel.P100], 100*r.bwEff[perfmodel.P100], 100*r.appEff[perfmodel.P100],
			100*pAll)
	}
	fmt.Fprintf(w, "\n(BW%% here is useful traffic / peak; the paper's counter-based numbers also include wasted traffic.)\n")
}

// --- Section IV-C system analysis ---------------------------------------------

func sysAnalysis(w io.Writer) {
	fmt.Fprintf(w, "\n## Section IV-C — system analysis (modeled)\n\n")
	for _, n := range []int{1000, 4000} {
		wl := perfmodel.BM(n)
		best := map[perfmodel.MachineID]float64{}
		bestV := map[perfmodel.MachineID]string{}
		for _, m := range perfmodel.Machines() {
			for _, v := range perfmodel.CalibratedVersions() {
				if v == "manual-serial" || !perfmodel.Supported(v, m.ID) {
					continue
				}
				est, err := perfmodel.Time(v, m, wl)
				if err != nil {
					continue
				}
				if b, ok := best[m.ID]; !ok || est.Seconds < b {
					best[m.ID] = est.Seconds
					bestV[m.ID] = v
				}
			}
		}
		cpuBest := math.Min(best[perfmodel.Xeon], best[perfmodel.KNL])
		gap := 100 * (cpuBest - best[perfmodel.P100]) / cpuBest
		fmt.Fprintf(w, "%d^2: footprint %.2f GB; best Xeon %.2f s (%s), best KNL %.2f s (%s), best P100 %.2f s (%s); GPU ahead of best CPU by %.2f%%\n",
			n, wl.FootprintBytes()/1e9,
			best[perfmodel.Xeon], bestV[perfmodel.Xeon],
			best[perfmodel.KNL], bestV[perfmodel.KNL],
			best[perfmodel.P100], bestV[perfmodel.P100], gap)
	}
	fmt.Fprintf(w, "(paper: GPU ahead by 3.04%% at 1000^2 and 50.57%% at 4000^2; Xeon beats KNL at 1000^2, KNL wins at 4000^2)\n")
}

// --- KNL memory-mode ablation ---------------------------------------------

// knlModes reproduces the Section IV-B claim that flat MCDRAM mode gives
// the fastest KNL runtimes: the best CPU version is modeled on the KNL in
// flat, cache and DDR-only configuration at both dataset sizes.
func knlModes(w io.Writer) {
	fmt.Fprintf(w, "\n## Ablation — KNL memory modes (modeled; the paper selected flat MCDRAM)\n\n")
	fmt.Fprintf(w, "| %-10s | %14s | %14s |\n", "mode", "1000^2 (s)", "4000^2 (s)")
	fmt.Fprintf(w, "|%s|%s|%s|\n", dashes(12), dashes(16), dashes(16))
	for _, mode := range perfmodel.KNLModes() {
		m := perfmodel.KNLWithMode(mode)
		row := fmt.Sprintf("| %-10s ", string(mode))
		for _, n := range []int{1000, 4000} {
			wl := perfmodel.BM(n)
			best := math.Inf(1)
			for _, v := range perfmodel.CalibratedVersions() {
				if v == "manual-serial" || !perfmodel.Supported(v, perfmodel.KNL) {
					continue
				}
				if est, err := perfmodel.Time(v, m, wl); err == nil && est.Seconds < best {
					best = est.Seconds
				}
			}
			row += fmt.Sprintf("| %14.2f ", best)
		}
		fmt.Fprintf(w, "%s|\n", row)
	}
	fmt.Fprintf(w, "\n(flat must be fastest at both sizes; DDR-only shows what MCDRAM buys)\n")
}

// --- strong-scaling study (the paper's future-work item) -------------------

// scaling measures the distributed versions at 1..8 ranks on this host —
// the single-node half of the paper's stated future work ("examine the
// difference between single node and distributed memory systems").
func scaling(w io.Writer, n, steps int) {
	fmt.Fprintf(w, "\n## Strong scaling — distributed versions, %d^2, %d steps (real execution)\n\n", n, steps)
	cfg := config.BenchmarkN(n)
	cfg.EndStep = steps
	fmt.Fprintf(w, "| %-10s | %12s | %12s | %12s |\n", "ranks", "manual-mpi", "ops-mpi", "speedup(mpi)")
	fmt.Fprintf(w, "|%s|%s|%s|%s|\n", dashes(12), dashes(14), dashes(14), dashes(14))
	var base time.Duration
	for _, ranks := range []int{1, 2, 4, 8} {
		times := map[string]time.Duration{}
		for _, name := range []string{"manual-mpi", "ops-mpi"} {
			v, err := registry.Get(name)
			if err != nil {
				fmt.Fprintln(w, err)
				return
			}
			k, err := v.Make(registry.Params{Ranks: ranks})
			if err != nil {
				fmt.Fprintln(w, err)
				continue
			}
			s := solver.New(solver.FromConfig(&cfg))
			start := time.Now()
			_, err = driver.Run(cfg, k, s, nil)
			d := time.Since(start)
			k.Close()
			if err != nil {
				fmt.Fprintf(w, "| %d ranks: %s error: %v |\n", ranks, name, err)
				continue
			}
			times[name] = d
		}
		if ranks == 1 {
			base = times["manual-mpi"]
		}
		speedup := 0.0
		if times["manual-mpi"] > 0 {
			speedup = float64(base) / float64(times["manual-mpi"])
		}
		fmt.Fprintf(w, "| %10d | %12s | %12s | %11.2fx |\n",
			ranks, times["manual-mpi"].Round(time.Millisecond), times["ops-mpi"].Round(time.Millisecond), speedup)
	}
}

// --- measured (real-execution) experiments ------------------------------------

func runVersion(v registry.Version, cfg config.Config) (time.Duration, driver.Result, error) {
	k, err := v.Make(registry.Params{})
	if err != nil {
		return 0, driver.Result{}, err
	}
	defer k.Close()
	s := solver.New(solver.FromConfig(&cfg))
	start := time.Now()
	res, err := driver.Run(cfg, k, s, nil)
	return time.Since(start), res, err
}

func measured(w io.Writer, n, steps int) {
	fmt.Fprintf(w, "\n## Measured — all versions at %d^2, %d steps (real Go execution on this host)\n\n", n, steps)
	cfg := config.BenchmarkN(n)
	cfg.EndStep = steps
	type result struct {
		name string
		d    time.Duration
		temp float64
	}
	var results []result
	for _, v := range registry.All() {
		d, res, err := runVersion(v, cfg)
		if err != nil {
			fmt.Fprintf(w, "| %-18s | error: %v |\n", v.Name, err)
			continue
		}
		results = append(results, result{v.Name, d, res.Final.Temperature})
	}
	sort.Slice(results, func(i, j int) bool { return results[i].d < results[j].d })
	fmt.Fprintf(w, "| %-18s | %12s | %18s |\n", "version", "wall time", "final temperature")
	fmt.Fprintf(w, "|%s|%s|%s|\n", dashes(20), dashes(14), dashes(20))
	for _, r := range results {
		fmt.Fprintf(w, "| %-18s | %12s | %18.10f |\n", r.name, r.d.Round(time.Millisecond), r.temp)
	}
	// All versions must agree on the physics.
	for _, r := range results[1:] {
		if rel := math.Abs(r.temp-results[0].temp) / math.Abs(results[0].temp); rel > 1e-6 {
			fmt.Fprintf(w, "WARNING: %s diverges from %s by %g\n", r.name, results[0].name, rel)
		}
	}
}

// --- ablations -----------------------------------------------------------------

// benchTilingJSONFile is where -json mirrors the tiling rows (repo root
// when teabench runs from there, as `make bench-tiling` does). The tiled
// sweeps_per_iter of the ops-serial row is the committed baseline that
// TestTilingSweepsGate enforces in CI.
const benchTilingJSONFile = "BENCH_tiling.json"

// tilingArm is one measurement arm (tiled or untiled) of the chain-tiling
// experiment: best-of-reps wall nanoseconds per CG iteration, and the
// full-field sweep count per iteration — chain flushes for tiled arms,
// individually executed loops for untiled ones.
type tilingArm struct {
	NsPerIter     float64 `json:"ns_per_iter"`
	SweepsPerIter float64 `json:"sweeps_per_iter"`
}

// tilingRow is one port configuration's tiled-vs-untiled comparison.
type tilingRow struct {
	Version string    `json:"version"`
	TileX   int       `json:"tile_x"`
	TileY   int       `json:"tile_y"`
	Tiled   tilingArm `json:"tiled"`
	Untiled tilingArm `json:"untiled"`
	Speedup float64   `json:"speedup"`
	Error   string    `json:"error,omitempty"`
}

// tilingReport is the BENCH_tiling.json schema (see docs/OPERATIONS.md).
type tilingReport struct {
	Mesh  int         `json:"mesh"`
	Iters int         `json:"iters"`
	Reps  int         `json:"reps"`
	Rows  []tilingRow `json:"rows"`
}

// tilingChainMeasure runs one arm: a diagonal-preconditioned CG solve
// pinned to exactly iters iterations (Eps is unreachable) on a fresh port,
// repeated reps times keeping the best wall time. Sweeps come from the
// port's TilingSnapshot delta around the solve, so setup loops are
// excluded. Returns the arm plus the resolved tile geometry (meaningful
// for tiled arms, and what TileAuto actually picked).
func tilingChainMeasure(opt opsport.Options, n, iters, reps int) (tilingArm, int, int, error) {
	cfg := config.BenchmarkN(n)
	cfg.Preconditioner = config.PrecondJacDiag
	cfg.MaxIters = iters
	cfg.Eps = 1e-300
	arm := tilingArm{NsPerIter: math.Inf(1)}
	tx, ty := 0, 0
	for r := 0; r < reps; r++ {
		p, err := opsport.New(opt)
		if err != nil {
			return tilingArm{}, 0, 0, err
		}
		m, err := grid.NewMesh(cfg.XMin, cfg.XMax, cfg.YMin, cfg.YMax, cfg.NX, cfg.NY)
		if err != nil {
			p.Close()
			return tilingArm{}, 0, 0, err
		}
		if err := p.Generate(m, cfg.States); err != nil {
			p.Close()
			return tilingArm{}, 0, 0, err
		}
		p.HaloExchange([]driver.FieldID{driver.FieldDensity, driver.FieldEnergy0}, 2)
		p.SetField()
		p.HaloExchange([]driver.FieldID{driver.FieldDensity, driver.FieldEnergy1}, 2)
		dt := cfg.InitialTimestep
		p.SolveInit(cfg.Coefficient, dt/(m.Dx*m.Dx), dt/(m.Dy*m.Dy), cfg.Preconditioner)
		pre := p.TilingSnapshot()
		start := time.Now()
		st, err := solver.Solve(p, solver.FromConfig(&cfg))
		d := time.Since(start)
		snap := p.TilingSnapshot().Sub(pre)
		p.Close()
		if err != nil {
			return tilingArm{}, 0, 0, err
		}
		if st.Iterations != iters {
			return tilingArm{}, 0, 0, fmt.Errorf("solve ran %d iterations, want %d", st.Iterations, iters)
		}
		sweeps := float64(snap.LoopsExecuted)
		if snap.Tiling {
			sweeps = float64(snap.Flushes)
		}
		arm.SweepsPerIter = sweeps / float64(iters)
		if ns := float64(d.Nanoseconds()) / float64(iters); ns < arm.NsPerIter {
			arm.NsPerIter = ns
		}
		tx, ty = snap.TileX, snap.TileY
	}
	return arm, tx, ty, nil
}

// tilingChains measures cross-iteration loop-chain tiling on the OPS port:
// with the deferred-reduction API the chains from consecutive CG iterations
// queue as one loop chain, so the tiled arm touches each field a fraction
// of the times the untiled arm does. Rows cover the serial port at an
// explicit geometry (flag-overridable), the cache-topology auto tiler, and
// the 4-rank distributed port. With jsonOut the report also lands in
// BENCH_tiling.json for the CI sweeps gate.
func tilingChains(w io.Writer, n, tileX, tileY int, tileAuto, jsonOut bool) {
	const iters, reps = 50, 3
	if tileX <= 0 {
		tileX = 128
	}
	if tileY <= 0 {
		tileY = 32
	}
	explicit := opsport.Options{Backend: ops.BackendSerial, Tiling: true, TileX: tileX, TileY: tileY, Name: "ops-tiled"}
	if tileAuto {
		explicit.TileX, explicit.TileY, explicit.TileAuto = 0, 0, true
	}
	serialRef := opsport.Options{Backend: ops.BackendSerial, Name: "ops-serial"}
	variants := []struct {
		name           string
		tiled, untiled opsport.Options
	}{
		{"ops-serial", explicit, serialRef},
		{"ops-serial-auto", opsport.Options{Backend: ops.BackendSerial, Tiling: true, TileAuto: true, Name: "ops-tiled"}, serialRef},
		{"ops-mpi-x4", opsport.Options{Backend: ops.BackendSerial, Ranks: 4, Tiling: true, TileX: tileX, TileY: tileY}, opsport.Options{Backend: ops.BackendSerial, Ranks: 4}},
	}
	rep := tilingReport{Mesh: n, Iters: iters, Reps: reps}
	for _, vr := range variants {
		row := tilingRow{Version: vr.name}
		var err error
		row.Tiled, row.TileX, row.TileY, err = tilingChainMeasure(vr.tiled, n, iters, reps)
		if err == nil {
			row.Untiled, _, _, err = tilingChainMeasure(vr.untiled, n, iters, reps)
		}
		if err != nil {
			row.Error = err.Error()
		} else if row.Tiled.NsPerIter > 0 {
			row.Speedup = row.Untiled.NsPerIter / row.Tiled.NsPerIter
		}
		rep.Rows = append(rep.Rows, row)
	}
	if jsonOut {
		buf, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "teabench: %v\n", err)
			return
		}
		buf = append(buf, '\n')
		w.Write(buf)
		if err := os.WriteFile(benchTilingJSONFile, buf, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "teabench: %v\n", err)
		} else {
			fmt.Fprintf(os.Stderr, "teabench: wrote %s\n", benchTilingJSONFile)
		}
		return
	}
	fmt.Fprintf(w, "\n## Cross-iteration loop-chain tiling — ns per CG iteration, %d^2, jac_diag precond (real execution, best of %d)\n\n", n, reps)
	fmt.Fprintf(w, "| %-16s | %9s | %13s | %13s | %8s | %13s | %13s |\n",
		"variant", "tile", "tiled ns/it", "untiled ns/it", "speedup", "tiled sw/it", "untiled sw/it")
	fmt.Fprintf(w, "|%s|%s|%s|%s|%s|%s|%s|\n", dashes(18), dashes(11), dashes(15), dashes(15), dashes(10), dashes(15), dashes(15))
	for _, r := range rep.Rows {
		if r.Error != "" {
			fmt.Fprintf(w, "| %-16s | error: %s |\n", r.Version, r.Error)
			continue
		}
		fmt.Fprintf(w, "| %-16s | %4dx%-4d | %13.0f | %13.0f | %7.2fx | %13.2f | %13.2f |\n",
			r.Version, r.TileX, r.TileY, r.Tiled.NsPerIter, r.Untiled.NsPerIter, r.Speedup,
			r.Tiled.SweepsPerIter, r.Untiled.SweepsPerIter)
	}
}

func blockSizeAblation(w io.Writer, n int) {
	fmt.Fprintf(w, "\n## Ablation — CUDA kernel block size (real execution, %d^2; the paper fixes 64x8)\n\n", n)
	cfg := config.BenchmarkN(n)
	cfg.EndStep = 2
	blocks := []simgpu.Dim2{{X: 8, Y: 1}, {X: 16, Y: 4}, {X: 32, Y: 4}, {X: 64, Y: 8}, {X: 128, Y: 8}, {X: 512, Y: 2}}
	fmt.Fprintf(w, "| %-10s | %12s | %10s |\n", "block", "wall time", "launches")
	fmt.Fprintf(w, "|%s|%s|%s|\n", dashes(12), dashes(14), dashes(12))
	for _, blk := range blocks {
		v, err := registry.Get("manual-cuda")
		if err != nil {
			fmt.Fprintln(w, err)
			return
		}
		k, err := v.Make(registry.Params{Block: blk})
		if err != nil {
			fmt.Fprintln(w, err)
			continue
		}
		s := solver.New(solver.FromConfig(&cfg))
		start := time.Now()
		_, err = driver.Run(cfg, k, s, nil)
		d := time.Since(start)
		type devStats interface{ Device() *simgpu.Device }
		launches := int64(0)
		if ds, ok := k.(devStats); ok {
			launches = ds.Device().Stats().Launches
		}
		k.Close()
		if err != nil {
			fmt.Fprintf(w, "| %4dx%-5d | error: %v |\n", blk.X, blk.Y, err)
			continue
		}
		fmt.Fprintf(w, "| %4dx%-5d | %12s | %10d |\n", blk.X, blk.Y, d.Round(time.Millisecond), launches)
	}
}

// --- CG kernel fusion ---------------------------------------------------------

// benchJSONFile is where -json mirrors the cgfusion rows (repo root when
// teabench runs from there, as `make bench-fusion` does).
const benchJSONFile = "BENCH_cgfusion.json"

// cgFusionArm is one measurement arm (fused or unfused) of the CG hot-path
// experiment.
type cgFusionArm struct {
	NsPerIter     float64 `json:"ns_per_iter"`
	SweepsPerIter float64 `json:"sweeps_per_iter"`
}

// cgFusionRow is one port's fused-vs-unfused comparison.
type cgFusionRow struct {
	Version string      `json:"version"`
	Fused   cgFusionArm `json:"fused"`
	Unfused cgFusionArm `json:"unfused"`
	Speedup float64     `json:"speedup"`
	Error   string      `json:"error,omitempty"`
}

// cgFusionMeasure runs one arm: a diagonal-preconditioned CG solve pinned
// to exactly iters iterations (Eps is unreachable), on an instrumented
// fresh port, returning wall nanoseconds and profiler-attributed full-field
// sweeps per iteration.
func cgFusionMeasure(v registry.Version, n, iters int, disableFusion bool) (cgFusionArm, error) {
	cfg := config.BenchmarkN(n)
	cfg.Preconditioner = config.PrecondJacDiag
	cfg.MaxIters = iters
	cfg.Eps = 1e-300
	k, err := v.Make(registry.Params{})
	if err != nil {
		return cgFusionArm{}, err
	}
	defer k.Close()
	prof := profiler.New()
	in := driver.Instrument(k, prof)
	m, err := grid.NewMesh(cfg.XMin, cfg.XMax, cfg.YMin, cfg.YMax, cfg.NX, cfg.NY)
	if err != nil {
		return cgFusionArm{}, err
	}
	if err := in.Generate(m, cfg.States); err != nil {
		return cgFusionArm{}, err
	}
	in.HaloExchange([]driver.FieldID{driver.FieldDensity, driver.FieldEnergy0}, 2)
	in.SetField()
	in.HaloExchange([]driver.FieldID{driver.FieldDensity, driver.FieldEnergy1}, 2)
	dt := cfg.InitialTimestep
	in.SolveInit(cfg.Coefficient, dt/(m.Dx*m.Dx), dt/(m.Dy*m.Dy), cfg.Preconditioner)
	opt := solver.FromConfig(&cfg)
	opt.DisableFusion = disableFusion
	start := time.Now()
	st, err := solver.Solve(in, opt)
	d := time.Since(start)
	if err != nil {
		return cgFusionArm{}, err
	}
	if st.Iterations != iters {
		return cgFusionArm{}, fmt.Errorf("solve ran %d iterations, want %d", st.Iterations, iters)
	}
	// Per-iteration sweeps come from the analytic counters of the three
	// hot kernels (the once-per-solve cg_init_p is excluded).
	var sweeps int64
	for _, name := range []string{"cg_calc_w", "cg_calc_w_fused", "cg_calc_ur", "cg_calc_ur_fused", "cg_calc_p"} {
		if e, ok := prof.Lookup(name); ok {
			sweeps += e.Sweeps
		}
	}
	return cgFusionArm{
		NsPerIter:     float64(d.Nanoseconds()) / float64(iters),
		SweepsPerIter: float64(sweeps) / float64(iters),
	}, nil
}

// cgFusion compares the fused CG hot path against the unfused kernels on
// every port with a fused implementation, plus one deliberately-unfused
// port exercising the solver fallback. With jsonOut the rows are emitted
// as a JSON array for downstream tooling.
func cgFusion(w io.Writer, n int, jsonOut bool) {
	const iters = 50
	versions := []string{
		"manual-serial", "manual-omp", "manual-mpi", "manual-cuda",
		"ops-openmp", "kokkos-openmp", "raja-openmp",
		"manual-openacc-cpu", // no fused kernels: both arms take the fallback
	}
	var rows []cgFusionRow
	for _, name := range versions {
		row := cgFusionRow{Version: name}
		v, err := registry.Get(name)
		if err == nil {
			row.Fused, err = cgFusionMeasure(v, n, iters, false)
		}
		if err == nil {
			row.Unfused, err = cgFusionMeasure(v, n, iters, true)
		}
		if err != nil {
			row.Error = err.Error()
		} else if row.Fused.NsPerIter > 0 {
			row.Speedup = row.Unfused.NsPerIter / row.Fused.NsPerIter
		}
		rows = append(rows, row)
	}
	if jsonOut {
		buf, err := json.MarshalIndent(rows, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "teabench: %v\n", err)
			return
		}
		buf = append(buf, '\n')
		w.Write(buf)
		// Also drop the rows next to the working directory for downstream
		// tooling; the schema is documented in docs/OPERATIONS.md.
		if err := os.WriteFile(benchJSONFile, buf, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "teabench: %v\n", err)
		} else {
			fmt.Fprintf(os.Stderr, "teabench: wrote %s\n", benchJSONFile)
		}
		return
	}
	fmt.Fprintf(w, "\n## CG kernel fusion — ns per CG iteration, %d^2, jac_diag precond (real execution)\n\n", n)
	fmt.Fprintf(w, "| %-18s | %12s | %12s | %8s | %13s | %13s |\n",
		"version", "fused ns/it", "unfused ns/it", "speedup", "fused sw/it", "unfused sw/it")
	fmt.Fprintf(w, "|%s|%s|%s|%s|%s|%s|\n", dashes(20), dashes(14), dashes(14), dashes(10), dashes(15), dashes(15))
	for _, r := range rows {
		if r.Error != "" {
			fmt.Fprintf(w, "| %-18s | error: %s |\n", r.Version, r.Error)
			continue
		}
		fmt.Fprintf(w, "| %-18s | %12.0f | %12.0f | %7.2fx | %13.2f | %13.2f |\n",
			r.Version, r.Fused.NsPerIter, r.Unfused.NsPerIter, r.Speedup,
			r.Fused.SweepsPerIter, r.Unfused.SweepsPerIter)
	}
}

func dashes(n int) string { return strings.Repeat("-", n) }
