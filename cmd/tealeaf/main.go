// Command tealeaf runs the heat-conduction mini-app: it reads a tea.in
// deck (or one of the built-in tea_bm benchmarks), selects one of the
// seventeen TeaLeaf versions from the registry and runs the time-marching
// loop, printing the per-step solver log and the QA field summary exactly
// like the original mini-app driver.
//
// Examples:
//
//	tealeaf -benchmark bm_250 -version manual-omp -threads 8
//	tealeaf -in tea.in -version ops-mpi-tiled -ranks 4
//	tealeaf -benchmark bm_500 -version manual-cuda -blockx 64 -blocky 8 -profile
//	tealeaf -list
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"github.com/warwick-hpsc/tealeaf-go/internal/backends/serial"
	"github.com/warwick-hpsc/tealeaf-go/internal/chaos"
	"github.com/warwick-hpsc/tealeaf-go/internal/comm"
	"github.com/warwick-hpsc/tealeaf-go/internal/config"
	"github.com/warwick-hpsc/tealeaf-go/internal/driver"
	"github.com/warwick-hpsc/tealeaf-go/internal/grid"
	"github.com/warwick-hpsc/tealeaf-go/internal/obs"
	"github.com/warwick-hpsc/tealeaf-go/internal/profiler"
	"github.com/warwick-hpsc/tealeaf-go/internal/registry"
	"github.com/warwick-hpsc/tealeaf-go/internal/simgpu"
	"github.com/warwick-hpsc/tealeaf-go/internal/solver"
	"github.com/warwick-hpsc/tealeaf-go/internal/vis"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "tealeaf:", err)
		os.Exit(1)
	}
}

// writeTrace dumps the tracer's spans to path as trace-event JSON.
func writeTrace(path string, tr *obs.Tracer) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := tr.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// solverKind maps a tea.in solver keyword to its SolverKind, for -fallback.
func solverKind(name string) (config.SolverKind, error) {
	switch name {
	case "cg":
		return config.SolverCG, nil
	case "jacobi":
		return config.SolverJacobi, nil
	case "chebyshev":
		return config.SolverChebyshev, nil
	case "ppcg":
		return config.SolverPPCG, nil
	default:
		return 0, fmt.Errorf("unknown fallback solver %q (want cg, jacobi, chebyshev or ppcg)", name)
	}
}

func run() error {
	var (
		inPath    = flag.String("in", "", "path to a tea.in input deck")
		benchmark = flag.String("benchmark", "", "built-in benchmark deck (e.g. bm_250); see -list")
		version   = flag.String("version", "manual-serial", "TeaLeaf version to run; see -list")
		threads   = flag.Int("threads", 0, "threads per process/team (0: all cores)")
		ranks     = flag.Int("ranks", 0, "ranks for distributed versions (0: 4)")
		blockX    = flag.Int("blockx", 0, "GPU kernel block width (0: version default)")
		blockY    = flag.Int("blocky", 0, "GPU kernel block height")
		tileX     = flag.Int("tile-x", 0, "OPS tile width in cells (0: default)")
		tileY     = flag.Int("tile-y", 0, "OPS tile height in cells")
		tileAuto  = flag.Bool("tile-auto", false, "derive OPS tile extents from the detected cache topology (explicit -tile-x/-tile-y win)")
		profile   = flag.Bool("profile", false, "print the per-kernel profile after the run")
		traceOut  = flag.String("trace-out", "", "write per-kernel spans as Chrome trace-event JSON (chrome://tracing) to this file")
		qa        = flag.Bool("qa", false, "verify the result against the serial reference")
		visit     = flag.String("visit", "", "write the final density/energy/temperature fields to this .vtk file")
		list      = flag.Bool("list", false, "list versions and benchmark decks, then exit")
		dump      = flag.Bool("dump-config", false, "print the resolved configuration, then exit")

		ckEvery    = flag.Int("checkpoint-every", 0, "steps between recovery checkpoints (0: resilience off)")
		ckFile     = flag.String("checkpoint-file", "", "mirror checkpoints to this file (CRC-validated)")
		resume     = flag.Bool("resume", false, "resume from -checkpoint-file if it exists")
		maxRetries = flag.Int("max-retries", 3, "consecutive failed step attempts before giving up")
		faultSpec  = flag.String("fault-spec", "", "inject kernel faults, e.g. \"panic@2.5;flip@3.7\" (kind@step.call)")
		fallback   = flag.String("fallback", "", "comma-separated solver fallback chain on breakdown, e.g. \"jacobi\"")
		deadline   = flag.Duration("deadline", 0, "wall-clock budget; on expiry the run stops promptly with its partial result (0: none)")
		sdcEvery   = flag.Int("sdc-check-every", 0, fmt.Sprintf("CG iterations between ABFT true-residual checks (0: off; %d is the recommended cadence)", solver.DefaultSDCCheckEvery))
		commSums   = flag.Bool("comm-checksums", false, "CRC-32C checksum every comm payload of message-passing versions; corruption is repaired or escalated")
	)
	// Historical spellings of the tile flags keep working.
	flag.IntVar(tileX, "tilex", 0, "alias for -tile-x")
	flag.IntVar(tileY, "tiley", 0, "alias for -tile-y")
	flag.Parse()

	if *list {
		fmt.Println("versions:")
		for _, v := range registry.All() {
			fmt.Printf("  %-20s %-7s %-16s %s\n", v.Name, v.Group, v.Model, v.Notes)
		}
		fmt.Println("benchmarks:")
		for _, b := range config.BenchmarkNames() {
			fmt.Printf("  %s\n", b)
		}
		return nil
	}

	var cfg config.Config
	var err error
	switch {
	case *inPath != "" && *benchmark != "":
		return fmt.Errorf("-in and -benchmark are mutually exclusive")
	case *inPath != "":
		cfg, err = config.ParseFile(*inPath)
	case *benchmark != "":
		cfg, err = config.Benchmark(*benchmark)
	default:
		cfg, err = config.Benchmark("bm_250")
	}
	if err != nil {
		return err
	}
	if *dump {
		fmt.Print(cfg.Summary())
		return nil
	}

	v, err := registry.Get(*version)
	if err != nil {
		return err
	}
	params := registry.Params{
		Threads:  *threads,
		Ranks:    *ranks,
		Block:    simgpu.Dim2{X: *blockX, Y: *blockY},
		TileX:    *tileX,
		TileY:    *tileY,
		TileAuto: *tileAuto,
	}
	k, err := v.Make(params)
	if err != nil {
		return err
	}
	defer k.Close()

	world, _ := any(k).(interface{ World() *comm.World })
	if *commSums {
		if world == nil {
			return fmt.Errorf("-comm-checksums: version %s has no communication world", v.Name)
		}
		world.World().SetChecksums(true)
	}

	var kernels driver.Kernels = k
	var prof *profiler.Profile
	var tracer *obs.Tracer
	if *profile || *traceOut != "" {
		prof = profiler.New()
		kernels = driver.Instrument(k, prof)
	}
	if *traceOut != "" {
		tracer = obs.NewTracer(0)
		prof.SetSpanObserver(tracer.Observer("kernel", 1))
	}
	var injected *chaos.Kernels
	if *faultSpec != "" {
		if *ckEvery <= 0 {
			return fmt.Errorf("-fault-spec needs -checkpoint-every N: without checkpoints an injected fault just crashes the run")
		}
		faults, err := chaos.ParseSpec(*faultSpec)
		if err != nil {
			return err
		}
		injected = chaos.Wrap(kernels, faults)
		kernels = injected
	}

	opt := solver.FromConfig(&cfg)
	opt.SDCCheckEvery = *sdcEvery
	if *fallback != "" {
		for _, name := range strings.Split(*fallback, ",") {
			kind, err := solverKind(strings.TrimSpace(name))
			if err != nil {
				return err
			}
			opt.Fallback = append(opt.Fallback, kind)
		}
		// A degradation chain implies restart-from-iterate is wanted too.
		opt.MaxRestarts = 1
	}
	pol := driver.RecoveryPolicy{
		CheckpointEvery: *ckEvery,
		MaxRetries:      *maxRetries,
		CheckpointPath:  *ckFile,
		Resume:          *resume,
	}

	ctx := context.Background()
	if *deadline > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *deadline)
		defer cancel()
		if world != nil {
			// The budget also bounds every collective, so a rank hung in a
			// barrier cannot outlive the deadline.
			world.World().SetCollectiveTimeout(*deadline)
		}
	}

	fmt.Printf("TeaLeaf-Go  version=%s  mesh=%dx%d  solver=%s  eps=%g\n",
		v.Name, cfg.NX, cfg.NY, cfg.Solver, cfg.Eps)
	start := time.Now()
	res, err := driver.RunResilientCtx(ctx, cfg, kernels, solver.New(opt), os.Stdout, pol)
	wall := time.Since(start)
	if tracer != nil {
		// The trace is written even for partial or failed runs: what the
		// kernels did before the run ended is exactly what it shows.
		if werr := writeTrace(*traceOut, tracer); werr != nil {
			return werr
		}
		fmt.Printf("wrote %s (%d spans)\n", *traceOut, tracer.Len())
	}
	if err != nil {
		if *deadline > 0 && errors.Is(err, context.DeadlineExceeded) {
			// An expired user-set budget is an expected ending, not a fault:
			// report the partial result and stop cleanly.
			fmt.Printf("deadline %v expired after %d completed step(s), %d iterations (partial result)\n",
				*deadline, len(res.Steps), res.TotalIterations)
			return nil
		}
		return err
	}
	fmt.Printf("wall clock %12s   total iterations %d\n", wall.Round(time.Microsecond), res.TotalIterations)
	if res.Recoveries > 0 {
		fmt.Printf("recovered from %d failed step attempt(s) via checkpoint rollback\n", res.Recoveries)
	}
	if injected != nil {
		fmt.Printf("chaos: %d of %d scheduled faults fired\n", injected.Fired(), len(strings.Split(*faultSpec, ";")))
	}

	if *profile {
		if tr := driver.AsTilingReporter(k); tr != nil {
			snap := tr.TilingSnapshot()
			prof.SetGauge("ops_loops_executed", float64(snap.LoopsExecuted))
			prof.SetGauge("ops_flushes", float64(snap.Flushes))
			if snap.Tiling {
				prof.SetGauge("ops_tiles", float64(snap.Tiles))
				prof.SetGauge("ops_chains", float64(snap.Chains))
				prof.SetGauge("ops_max_chain_len", float64(snap.MaxChainLen))
				prof.SetGauge("ops_tile_x", float64(snap.TileX))
				prof.SetGauge("ops_tile_y", float64(snap.TileY))
				if res.TotalIterations > 0 {
					// Flushes are what the tiled chains actually swept;
					// LoopsExecuted is what the same loops would cost untiled.
					prof.SetGauge("ops_sweeps_per_iter_tiled",
						float64(snap.Flushes)/float64(res.TotalIterations))
					prof.SetGauge("ops_sweeps_per_iter_untiled",
						float64(snap.LoopsExecuted)/float64(res.TotalIterations))
				}
			}
		}
		fmt.Println()
		prof.Report(os.Stdout)
	}
	if *visit != "" {
		m, err := grid.NewMesh(cfg.XMin, cfg.XMax, cfg.YMin, cfg.YMax, cfg.NX, cfg.NY)
		if err != nil {
			return err
		}
		fields := []vis.Field{
			{Name: "density", Data: k.FetchField(driver.FieldDensity)},
			{Name: "energy", Data: k.FetchField(driver.FieldEnergy0)},
			{Name: "temperature", Data: k.FetchField(driver.FieldU)},
		}
		if err := vis.WriteFile(*visit, m, fields); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", *visit)
	}
	if *qa {
		line := fmt.Sprintf("sdc: %d detected / %d recovered by the solver invariant monitor",
			res.SDCDetected, res.SDCRecovered)
		if world != nil {
			det, rec := world.World().ChecksumStats()
			line += fmt.Sprintf("; %d detected / %d repaired by comm checksums", det, rec)
		}
		fmt.Println(line)
		ref := serial.New()
		defer ref.Close()
		refRes, err := driver.Run(cfg, ref, solver.New(solver.FromConfig(&cfg)), nil)
		if err != nil {
			return fmt.Errorf("qa reference run: %w", err)
		}
		diff, err := driver.CompareTotalsChecked(res.Final, refRes.Final)
		if err != nil {
			return fmt.Errorf("qa check: %w", err)
		}
		status := "PASSED"
		if diff > 1e-8 {
			status = "FAILED"
		}
		fmt.Printf("qa check vs manual-serial: max relative difference %.3e  %s\n", diff, status)
		if status == "FAILED" {
			return fmt.Errorf("qa check failed")
		}
	}
	return nil
}
