// Command teaserve runs the TeaLeaf solver as a long-lived HTTP service:
// clients POST tea.in decks (or benchmark names) to /v1/solve, a bounded
// priority queue with weighted-fair admission feeds a worker pool that
// schedules jobs least-loaded across a pool of registered versions, and the
// service publishes live Prometheus metrics at /metrics, Chrome trace-event
// spans at /debug/trace and the standard pprof handlers at /debug/pprof/.
//
// The request plane dedupes work before it reaches a solver: results are
// cached content-addressed (the canonical hash of the parsed deck, so
// formatting differences still hit), concurrent identical submissions
// collapse onto one in-flight solve, and small decks queued together
// micro-batch onto one worker's port. Clients can follow a job live at
// GET /v1/jobs/{id}/events (SSE, with a ?poll=1 long-poll fallback).
// SIGINT/SIGTERM drains gracefully: admission stops at once, in-flight and
// queued jobs run to completion, then the listener closes.
//
// With -state-dir the job plane is crash-safe: every accepted job is fsynced
// to an append-only journal before the 202, and the next start (same
// -state-dir) replays it — finished jobs reappear in /v1/jobs, jobs the
// crash interrupted are re-admitted and resume from their last on-disk
// checkpoint (fleet jobs from their -fleet-dir state).
//
// Examples:
//
//	teaserve -addr :8080
//	teaserve -addr :8080 -workers 8 -queue 32 -versions manual-serial,manual-omp
//	teaserve -addr :8080 -default-deadline 2m -checkpoint-every 5 -max-retries 3
//	teaserve -addr :8080 -cache-size 1024 -cache-ttl 1h -retain-jobs 10000
//	teaserve -addr :8080 -fleet-worker-bin ./tealeaf-worker -fleet-workers 4 -fleet-dir /var/lib/tealeaf/fleet
//	teaserve -addr :8080 -state-dir /var/lib/tealeaf/state -checkpoint-every 5
//
//	curl -s -X POST localhost:8080/v1/solve -d '{"benchmark": "bm_250"}'
//	curl -s -X POST localhost:8080/v1/solve -d '{"benchmark": "bm_250", "fleet": true}'
//	curl -s localhost:8080/v1/jobs/job-000001
//	curl -sN localhost:8080/v1/jobs/job-000001/events
//
// See docs/OPERATIONS.md for the full API, flag and metrics reference.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"github.com/warwick-hpsc/tealeaf-go/internal/driver"
	"github.com/warwick-hpsc/tealeaf-go/internal/fleet"
	"github.com/warwick-hpsc/tealeaf-go/internal/obs"
	"github.com/warwick-hpsc/tealeaf-go/internal/registry"
	"github.com/warwick-hpsc/tealeaf-go/internal/serve"
	"github.com/warwick-hpsc/tealeaf-go/internal/simgpu"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "teaserve:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		addr     = flag.String("addr", ":8080", "listen address")
		queue    = flag.Int("queue", 16, "bounded job queue depth; a full queue rejects with 429")
		workers  = flag.Int("workers", 2, "concurrent solves; each worker runs one job on its own port instance")
		versions = flag.String("versions", "manual-serial", "comma-separated scheduling pool for unpinned jobs; -sched picks the arbitration policy")
		sched    = flag.String("sched", serve.SchedPredictive, "version-pick policy for unpinned jobs: predictive (least predicted completion time, model-derived tuning hints) or leastloaded (legacy job-count fallback)")
		benchDir = flag.String("bench-dir", "", "seed the solve-time predictor from the BENCH_*.json artefacts in this directory at startup (empty: cold-start from the static machine models)")
		threads  = flag.Int("threads", 0, "threads per process/team for every job's port (0: all cores)")
		ranks    = flag.Int("ranks", 0, "ranks for distributed versions (0: 4)")
		blockX   = flag.Int("blockx", 0, "GPU kernel block width (0: version default)")
		blockY   = flag.Int("blocky", 0, "GPU kernel block height")
		tileX    = flag.Int("tilex", 0, "OPS tile width (0: default)")
		tileY    = flag.Int("tiley", 0, "OPS tile height")

		cacheSize     = flag.Int("cache-size", 256, "content-addressed result cache entries; identical decks return the stored result (0: off, also disables singleflight)")
		cacheTTL      = flag.Duration("cache-ttl", 0, "result cache entry lifetime (0: entries live until LRU eviction)")
		batchMaxCells = flag.Int("batch-max-cells", 16384, "decks at or below this cell count may share one worker dispatch and port (0: micro-batching off)")
		batchMaxJobs  = flag.Int("batch-max-jobs", 4, "most jobs coalesced into one micro-batch")
		retainJobs    = flag.Int("retain-jobs", 4096, "finished jobs kept for /v1/jobs before the oldest are evicted")
		retainAge     = flag.Duration("retain-age", 0, "finished jobs older than this are evicted regardless of count (0: no age bound)")

		fleetWorkers    = flag.Int("fleet-workers", 3, "default worker processes per fleet job (jobs may override with fleet_workers)")
		fleetWorkerBin  = flag.String("fleet-worker-bin", "", "path to the tealeaf-worker binary; empty disables fleet jobs")
		fleetDir        = flag.String("fleet-dir", "", "root directory for fleet job state (deck, checkpoint, sockets), one subdirectory per job; empty uses temp dirs (fleet jobs then not resumable after drain)")
		fleetHeartbeat  = flag.Duration("fleet-heartbeat", 0, "mesh-transport heartbeat interval between fleet workers (0: comm default)")
		fleetHBTimeout  = flag.Duration("fleet-heartbeat-timeout", 0, "silence window before a fleet worker's peers declare it lost (0: comm default)")
		fleetMaxMigrate = flag.Int("fleet-max-migrations", 3, "checkpoint migrations a fleet job may take before giving up")
		fleetDegrade    = flag.Bool("fleet-degrade", false, "shrink the fleet by one worker per migration instead of replacing the lost one")

		stateDir      = flag.String("state-dir", "", "durable job-plane root: accepted jobs are journaled (fsynced before the 202) and replayed on the next start, resuming interrupted work; empty keeps the job plane in memory")
		resumeBudget  = flag.Int("resume-budget", 3, "dispatch attempts one journaled job may take across restarts before replay fails it instead of resuming")
		resumeBackoff = flag.Duration("resume-backoff", 2*time.Second, "base of the full-jittered delay before re-dispatching a job that was mid-solve at the crash")

		defaultDeadline = flag.Duration("default-deadline", 0, "wall-clock budget for jobs that set none (0: unbounded)")
		ckEvery         = flag.Int("checkpoint-every", 0, "default steps between in-memory recovery checkpoints (0: resilience off)")
		maxRetries      = flag.Int("max-retries", 3, "default consecutive failed step attempts before a job gives up")
		backoff         = flag.Duration("backoff", 0, "base delay before a job's first retry, doubling per retry")
		traceSpans      = flag.Int("trace-spans", obs.DefaultTraceSpans, "span ring-buffer capacity for /debug/trace (oldest dropped first)")
		drainTimeout    = flag.Duration("drain-timeout", 0, "bound on graceful drain at shutdown (0: wait for every job)")
		quiet           = flag.Bool("quiet", false, "suppress the per-step solver log of running jobs")
		list            = flag.Bool("list", false, "list schedulable versions, then exit")
	)
	flag.Parse()

	if *list {
		for _, v := range registry.All() {
			fmt.Printf("%-20s %-7s %-16s %s\n", v.Name, v.Group, v.Model, v.Notes)
		}
		return nil
	}

	var pool []string
	for _, v := range strings.Split(*versions, ",") {
		if v = strings.TrimSpace(v); v != "" {
			pool = append(pool, v)
		}
	}
	opts := serve.Options{
		QueueSize: *queue,
		Workers:   *workers,
		Versions:  pool,
		Sched:     *sched,
		BenchDir:  *benchDir,
		Params: registry.Params{
			Threads: *threads,
			Ranks:   *ranks,
			Block:   simgpu.Dim2{X: *blockX, Y: *blockY},
			TileX:   *tileX,
			TileY:   *tileY,
		},
		CacheSize:       *cacheSize,
		CacheTTL:        *cacheTTL,
		BatchMaxCells:   *batchMaxCells,
		BatchMaxJobs:    *batchMaxJobs,
		RetainJobs:      *retainJobs,
		RetainAge:       *retainAge,
		StateDir:        *stateDir,
		ResumeBudget:    *resumeBudget,
		ResumeBackoff:   *resumeBackoff,
		DefaultDeadline: *defaultDeadline,
		Recovery: driver.RecoveryPolicy{
			CheckpointEvery: *ckEvery,
			MaxRetries:      *maxRetries,
			Backoff:         *backoff,
		},
		Tracer: obs.NewTracer(*traceSpans),
	}
	if *fleetWorkerBin != "" {
		opts.Fleet = fleet.Options{
			Workers:           *fleetWorkers,
			Threads:           *threads,
			WorkerCommand:     []string{*fleetWorkerBin},
			Dir:               *fleetDir,
			MaxMigrations:     *fleetMaxMigrate,
			Degrade:           *fleetDegrade,
			HeartbeatInterval: *fleetHeartbeat,
			HeartbeatTimeout:  *fleetHBTimeout,
		}
	}
	if !*quiet {
		opts.Log = os.Stdout
	}
	s, err := serve.New(opts)
	if err != nil {
		return err
	}
	if *stateDir != "" {
		r := s.Replay()
		fmt.Printf("teaserve: journal replayed %d records from %d segments (torn tail: %v): %d jobs (%d finished, %d resumed, %d over resume budget, %d dropped)\n",
			r.Records, r.Segments, r.Torn, r.Jobs, r.Finished, r.Resumed, r.GaveUp, r.Dropped)
	}

	srv := &http.Server{Addr: *addr, Handler: s.Handler()}
	errc := make(chan error, 1)
	go func() {
		fmt.Printf("teaserve listening on %s  workers=%d queue=%d sched=%s versions=%s\n",
			*addr, opts.Workers, opts.QueueSize, opts.Sched, strings.Join(opts.Versions, ","))
		errc <- srv.ListenAndServe()
	}()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-errc:
		return err // listener died; jobs in flight are abandoned with the process
	case <-ctx.Done():
	}
	stop() // a second signal kills the process the default way

	fmt.Println("teaserve: draining (in-flight and queued jobs run to completion)...")
	dctx := context.Background()
	if *drainTimeout > 0 {
		var cancel context.CancelFunc
		dctx, cancel = context.WithTimeout(dctx, *drainTimeout)
		defer cancel()
	}
	drainErr := s.Drain(dctx)
	// The listener closes only after the pool idles, so /v1/jobs and
	// /metrics stay scrapable through the drain window.
	sctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(sctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		return err
	}
	if drainErr != nil {
		return drainErr
	}
	fmt.Println("teaserve: drained cleanly")
	return nil
}
