# TeaLeaf-Go build/test/bench entry points. Everything is plain `go` tool
# invocations; the targets just pin the flag sets CI and CHANGES.md refer to.

GO ?= go

.PHONY: build test race bench-par bench

build:
	$(GO) build ./...

test: build
	$(GO) test ./...

# race runs the parallel-runtime and port suites under the race detector —
# the shared-memory barrier in internal/par and every consumer of it.
race:
	$(GO) test -race ./internal/par/... ./internal/backends/...

# bench-par measures the fork-join runtime itself: dispatch latency (epoch
# barrier vs the legacy channel-per-worker path), the 256² cg_calc_w-shaped
# reduction, and allocation counts for ReduceSum/ReduceSum2/ReduceMax
# (expected: 0 allocs/op).
bench-par:
	$(GO) test -bench=. -benchmem ./internal/par/

# bench runs the full repo benchmark set.
bench:
	$(GO) test -bench=. -benchmem ./...
