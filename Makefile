# TeaLeaf-Go build/test/bench entry points. Everything is plain `go` tool
# invocations; the targets just pin the flag sets CI and CHANGES.md refer to.

GO ?= go

.PHONY: build test race chaos fuzz bench-par bench-cg bench

build:
	$(GO) build ./...

test: build
	$(GO) test ./...

# race runs the parallel-runtime, message-passing-runtime and port suites
# under the race detector — the shared-memory barrier in internal/par, the
# pooled payload buffers in internal/comm, and every consumer of both.
race:
	$(GO) test -race ./internal/par/... ./internal/comm/... ./internal/backends/...

# chaos runs the resilience suite under the race detector: the comm fault
# injector and recovery latch, the chaos kernel wrapper, checkpoint/restore,
# the solver breakdown/fallback paths, the resilient run loop, and the
# per-port ChaosConformance drills (fault schedule + rollback must match a
# fault-free run to 1e-12).
chaos:
	$(GO) test -race ./internal/chaos/... ./internal/checkpoint/...
	$(GO) test -race -run 'Chaos|Fault|Resilien|Breakdown|Fallback|Restart|Recover|Watchdog|Kill|NaN|Divergence' \
		./internal/comm/... ./internal/solver/... ./internal/driver/... \
		./internal/backends/... ./internal/registry/...

# fuzz exercises the deck parser against its checked-in corpus plus 30s of
# new coverage-guided inputs.
fuzz:
	$(GO) test -fuzz FuzzParseReader -fuzztime 30s ./internal/config/

# bench-par measures the fork-join runtime itself: dispatch latency (epoch
# barrier vs the legacy channel-per-worker path), the 256² cg_calc_w-shaped
# reduction, and allocation counts for ReduceSum/ReduceSum2/ReduceMax
# (expected: 0 allocs/op).
bench-par:
	$(GO) test -bench=. -benchmem ./internal/par/

# bench-cg measures the fused CG hot path against the unfused kernels per
# port (ns/cg-iter metric); see EXPERIMENTS.md for a captured table.
bench-cg:
	$(GO) test -bench=BenchmarkCGIteration -benchmem -run '^$$' .

# bench runs the full repo benchmark set.
bench:
	$(GO) test -bench=. -benchmem ./...
