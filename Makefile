# TeaLeaf-Go build/test/bench entry points. Everything is plain `go` tool
# invocations; the targets just pin the flag sets CI and CHANGES.md refer to.

GO ?= go

.PHONY: build test race chaos fleet-chaos serve-crash fuzz bench-par bench-cg bench-sdc bench-serve bench-tiling bench-portability docs-lint bench

build:
	$(GO) build ./...

test: build
	$(GO) test ./...

# race runs the parallel-runtime, message-passing-runtime and port suites
# under the race detector — the shared-memory barrier in internal/par, the
# pooled payload buffers in internal/comm, and every consumer of both.
race:
	$(GO) test -race ./internal/par/... ./internal/comm/... ./internal/backends/...

# chaos runs the resilience suite under the race detector: the comm fault
# injector and recovery latch, the chaos kernel wrapper, checkpoint/restore,
# the solver breakdown/fallback paths, the resilient run loop, and the
# per-port ChaosConformance + SDCConformance drills (fault schedule +
# rollback must match a fault-free run to 1e-12; injected bit-flips must be
# detected by the ABFT monitor / comm checksums and recovered). The serving
# layer (job queue, worker pool, metrics registry, span tracer) runs its
# whole suite under race here too — it is the most goroutine-dense code in
# the repo.
chaos: fleet-chaos
	$(GO) test -race ./internal/chaos/... ./internal/checkpoint/...
	$(GO) test -race -run 'Chaos|Fault|Resilien|Breakdown|Fallback|Restart|Recover|Watchdog|Kill|NaN|Divergence|SDC|Cancel|Deadline|Checksum|Corrupt' \
		./internal/comm/... ./internal/solver/... ./internal/driver/... \
		./internal/backends/... ./internal/registry/...
	$(GO) test -race ./internal/serve/... ./internal/obs/...

# fleet-chaos runs the multi-process suite under the race detector: the
# supervised worker fleet (clean run, kill-9 migration drill, degraded
# finish, drain-vs-migration race, silent-worker heartbeat catch), the
# socket-transport bitwise-equivalence battery, the checkpoint lock stress
# test, and the serve-layer fleet jobs (submission, migration, readiness
# latch). The spawned worker processes are this same race-instrumented test
# binary re-exec'd, so data races inside workers are caught too. -timeout
# bounds the wall clock: every test has its own liveness monitor, so a hang
# is a bug, not a slow machine.
fleet-chaos:
	$(GO) test -race -timeout 10m ./internal/fleet/
	$(GO) test -race -timeout 10m -run 'TestSocketTransportBitwiseEquivalence|TestConformanceSocket' ./internal/backends/mpi/
	$(GO) test -race -timeout 10m -run 'TestConcurrentSaveLoadNeverTorn' ./internal/checkpoint/
	$(GO) test -race -timeout 10m -run 'TestServeFleet|TestSubmitFleetValidation|TestHTTPDrainLivenessVsReadiness|TestHTTPReadyzFleetDegraded' ./internal/serve/

# serve-crash is the durable-job-plane acceptance drill under the race
# detector: a real server process (the test binary re-exec'd) accepts 20
# mixed checkpointed single + fleet jobs, is SIGKILLed mid-flight, restarts
# against the same state and fleet directories, and every accepted job must
# settle bitwise-identical (1e-12) to a fault-free reference with the
# submitted == completed + expired + failed accounting identity exact on the
# scraped /metrics. The durable drain/resume/replay suite rides along.
serve-crash:
	$(GO) test -race -timeout 10m -count=1 -v \
		-run 'TestServeCrashDrill|TestDurableRestartRestoresStoreAndCache|TestReplayResumesNeverStartedJob|TestReplayBudgetExhaustedFailsTyped|TestDrainInterruptsAndRestartResumes|TestServeDrainResumesFleetJob|TestJournalCompactionKeepsStore' \
		./internal/serve/
	$(GO) test -race -count=1 ./internal/serve/journal/

# fuzz exercises the deck parser, the comm fault-spec parser and the journal
# frame decoder against their checked-in corpora plus 30s each of new
# coverage-guided inputs.
fuzz:
	$(GO) test -fuzz FuzzParseReader -fuzztime 30s ./internal/config/
	$(GO) test -fuzz FuzzParseSpec -fuzztime 30s ./internal/comm/
	$(GO) test -fuzz FuzzReplay -fuzztime 30s ./internal/serve/journal/

# bench-par measures the fork-join runtime itself: dispatch latency (epoch
# barrier vs the legacy channel-per-worker path), the 256² cg_calc_w-shaped
# reduction, and allocation counts for ReduceSum/ReduceSum2/ReduceMax
# (expected: 0 allocs/op).
bench-par:
	$(GO) test -bench=. -benchmem ./internal/par/

# bench-cg measures the fused CG hot path against the unfused kernels per
# port (ns/cg-iter metric); see EXPERIMENTS.md for a captured table.
bench-cg:
	$(GO) test -bench=BenchmarkCGIteration -benchmem -run '^$$' .

# bench-sdc measures the ABFT invariant monitor's cost at the default check
# cadence against the monitor-off baseline on the same pinned 50-iteration
# solve (acceptance budget <5%); see EXPERIMENTS.md for a captured table.
bench-sdc:
	$(GO) test -bench=BenchmarkSDCOverhead -benchtime 30x -count 3 -run '^$$' .

# bench-serve drives the job service with a mixed hot/unique deck stream and
# writes BENCH_serve.json (throughput, cache-hit ratio, latency quantiles —
# all read back from /metrics); see docs/OPERATIONS.md for the schema.
bench-serve:
	$(GO) run ./cmd/teabench -experiment serve -json

# bench-tiling measures cross-iteration loop-chain tiling on the OPS port
# (tiled vs untiled ns/cg-iter, sweeps/iter, tile geometry) and writes
# BENCH_tiling.json — the committed baseline TestTilingSweepsGate enforces;
# see docs/OPERATIONS.md for the schema and EXPERIMENTS.md for a captured
# table.
bench-tiling:
	$(GO) run ./cmd/teabench -experiment tiling -n 256 -json

# bench-portability runs every registered version at a reduced mesh and
# writes BENCH_portability.json: measured host wall times and application
# efficiencies, per-family harmonic-mean scores, and the deterministic
# modeled Pennycook report — the committed baseline TestPortabilityGate
# enforces and the artefact `teaserve -bench-dir` seeds its predictor
# from; see docs/PORTABILITY.md for the schema.
bench-portability:
	$(GO) run ./cmd/teabench -experiment portability -n 128 -steps 2 -json

# docs-lint cross-checks the operator docs against the code: every metric
# a doc names must be registered, every registered metric documented, and
# every teaserve flag covered by docs/OPERATIONS.md.
docs-lint:
	$(GO) test -count=1 -run 'TestDocsLint' .

# bench runs the full repo benchmark set.
bench:
	$(GO) test -bench=. -benchmem ./...
