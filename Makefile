# TeaLeaf-Go build/test/bench entry points. Everything is plain `go` tool
# invocations; the targets just pin the flag sets CI and CHANGES.md refer to.

GO ?= go

.PHONY: build test race bench-par bench-cg bench

build:
	$(GO) build ./...

test: build
	$(GO) test ./...

# race runs the parallel-runtime, message-passing-runtime and port suites
# under the race detector — the shared-memory barrier in internal/par, the
# pooled payload buffers in internal/comm, and every consumer of both.
race:
	$(GO) test -race ./internal/par/... ./internal/comm/... ./internal/backends/...

# bench-par measures the fork-join runtime itself: dispatch latency (epoch
# barrier vs the legacy channel-per-worker path), the 256² cg_calc_w-shaped
# reduction, and allocation counts for ReduceSum/ReduceSum2/ReduceMax
# (expected: 0 allocs/op).
bench-par:
	$(GO) test -bench=. -benchmem ./internal/par/

# bench-cg measures the fused CG hot path against the unfused kernels per
# port (ns/cg-iter metric); see EXPERIMENTS.md for a captured table.
bench-cg:
	$(GO) test -bench=BenchmarkCGIteration -benchmem -run '^$$' .

# bench runs the full repo benchmark set.
bench:
	$(GO) test -bench=. -benchmem ./...
