// Solvercompare: run the same problem with all four linear solvers the
// mini-app implements — CG, Jacobi, Chebyshev and PPCG — and compare
// iteration counts, runtimes and answers. This is the study Martineau et
// al. ran across TeaLeaf's solver options, reproduced on the Go ports.
package main

import (
	"fmt"
	"log"
	"math"
	"time"

	tealeaf "github.com/warwick-hpsc/tealeaf-go"
)

func main() {
	base := tealeaf.Benchmark(160)
	base.EndStep = 5

	type solverCase struct {
		name   string
		mutate func(*tealeaf.Config)
	}
	cases := []solverCase{
		{"cg", func(c *tealeaf.Config) { c.Solver = tealeaf.SolverCG }},
		{"cg+jacobi-precond", func(c *tealeaf.Config) {
			c.Solver = tealeaf.SolverCG
			c.Preconditioner = tealeaf.PrecondJacDiag
		}},
		{"chebyshev", func(c *tealeaf.Config) { c.Solver = tealeaf.SolverChebyshev }},
		{"ppcg", func(c *tealeaf.Config) {
			c.Solver = tealeaf.SolverPPCG
			c.PPCGInnerSteps = 8
		}},
		{"jacobi", func(c *tealeaf.Config) {
			c.Solver = tealeaf.SolverJacobi
			c.Eps = 1e-12 // Jacobi converges on the absolute update norm
			c.MaxIters = 200000
		}},
	}

	fmt.Println("solver               wall time      outer iters   inner steps   temperature")
	var ref float64
	for i, sc := range cases {
		cfg := base
		sc.mutate(&cfg)
		start := time.Now()
		res, err := tealeaf.Run(cfg, tealeaf.Options{Version: "manual-omp"})
		if err != nil {
			log.Fatalf("%s: %v", sc.name, err)
		}
		wall := time.Since(start)
		inner := 0
		for _, s := range res.Steps {
			inner += s.Stats.InnerIterations
		}
		fmt.Printf("%-20s %10s   %11d   %11d   %.10f\n",
			sc.name, wall.Round(time.Millisecond), res.TotalIterations, inner, res.Final.Temperature)
		if i == 0 {
			ref = res.Final.Temperature
		} else if d := math.Abs(res.Final.Temperature-ref) / math.Abs(ref); d > 1e-6 {
			log.Fatalf("%s diverged from CG by %g", sc.name, d)
		}
	}
	fmt.Println("\nall solvers agree on the final temperature field; they differ only")
	fmt.Println("in how many (and how heavy) iterations they need to get there.")
}
