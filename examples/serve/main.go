// Serve: run the solver as a service, in process. An internal/serve Server
// is stood up on a loopback listener, the tea_bm_1 deck is submitted over
// plain HTTP exactly as a remote client would, the job's progress is
// followed live over the SSE events stream, the identical deck is
// resubmitted to show the content-addressed result cache answering without
// a second solve, and the live /metrics exposition shows what the service
// counted — the smallest complete solver-as-a-service round trip.
//
// Run from the repository root:
//
//	go run ./examples/serve
package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"strings"
	"time"

	"github.com/warwick-hpsc/tealeaf-go/internal/serve"
)

// apiClient bounds every request-plane call: a hung or unreachable server
// surfaces as a dial/read timeout instead of a wedged client. The SSE
// stream below deliberately does NOT use it — a Timeout would sever the
// stream mid-job — and is bounded by a context instead.
var apiClient = &http.Client{
	Timeout: 30 * time.Second,
	Transport: &http.Transport{
		DialContext:           (&net.Dialer{Timeout: 5 * time.Second}).DialContext,
		TLSHandshakeTimeout:   5 * time.Second,
		ResponseHeaderTimeout: 10 * time.Second,
	},
}

// streamClient shares the bounded dial/header transport but has no overall
// Timeout, so long-lived event streams are cut only by their context.
var streamClient = &http.Client{Transport: apiClient.Transport}

func main() {
	// A tiny service: two workers, a four-deep queue, a result cache, no
	// resilience — the same Options cmd/teaserve builds from its flags.
	s, err := serve.New(serve.Options{QueueSize: 4, Workers: 2, CacheSize: 16})
	if err != nil {
		log.Fatal(err)
	}
	defer s.Close()

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	srv := &http.Server{Handler: s.Handler()}
	go srv.Serve(ln)
	defer srv.Shutdown(context.Background())
	base := "http://" + ln.Addr().String()
	fmt.Printf("serving on %s\n", base)

	// Submit the paper's benchmark deck as a remote client would: POST the
	// tea.in text wrapped in a job spec, read back the job's ID.
	deck, err := os.ReadFile("decks/tea_bm_1.in")
	if err != nil {
		log.Fatal(err)
	}
	body, _ := json.Marshal(serve.JobSpec{Deck: string(deck)})
	resp, err := apiClient.Post(base+"/v1/solve", "application/json", bytes.NewReader(body))
	if err != nil {
		log.Fatal(err)
	}
	var st serve.JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		log.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		log.Fatalf("submission rejected: %d %s", resp.StatusCode, st.Error)
	}
	fmt.Printf("submitted %s (state %s)\n", st.ID, st.State)

	// Follow the job live over the SSE events stream rather than polling:
	// one frame per lifecycle transition and per solver step, closing after
	// the "done" frame delivers the result. A stream has no natural response
	// deadline (it stays open for the life of the job), so it is bounded by
	// a cancellable context rather than a client timeout; the dial and
	// header timeouts still come from the transport.
	streamCtx, streamCancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer streamCancel()
	req, err := http.NewRequestWithContext(streamCtx, http.MethodGet, base+"/v1/jobs/"+st.ID+"/events", nil)
	if err != nil {
		log.Fatal(err)
	}
	stream, err := streamClient.Do(req)
	if err != nil {
		log.Fatal(err)
	}
	sc := bufio.NewScanner(stream.Body)
	for sc.Scan() {
		data, ok := strings.CutPrefix(sc.Text(), "data: ")
		if !ok {
			continue
		}
		var ev serve.Event
		if err := json.Unmarshal([]byte(data), &ev); err != nil {
			log.Fatal(err)
		}
		switch ev.Type {
		case "state":
			fmt.Printf("  -> %s\n", ev.State)
		case "step":
			fmt.Printf("  step %2d  t=%.2f  %4d iters  residual %.3e\n",
				ev.Step, ev.SimTime, ev.Iterations, ev.Residual)
		case "done":
			st.State = serve.StateDone
			st.Result = ev.Result
			if ev.Error != "" {
				log.Fatalf("job failed: %s", ev.Error)
			}
		}
	}
	stream.Body.Close()
	if st.State != serve.StateDone || st.Result == nil {
		log.Fatalf("job ended %s: %s", st.State, st.Error)
	}

	res := st.Result
	fmt.Printf("\njob %s done on %s in %.2fs:\n", st.ID, st.Version, res.WallSeconds)
	fmt.Printf("  steps            %6d\n", res.Steps)
	fmt.Printf("  total iterations %6d\n", res.TotalIterations)
	fmt.Printf("  temperature      %14.6e\n", res.Temperature)
	fmt.Printf("  internal energy  %14.6e\n", res.InternalEnergy)

	// Resubmit the identical deck: the content-addressed cache answers at
	// submission time — "cached": true, no second solver invocation, and a
	// result bitwise-identical to the first.
	resp, err = apiClient.Post(base+"/v1/solve", "application/json", bytes.NewReader(body))
	if err != nil {
		log.Fatal(err)
	}
	var again serve.JobStatus
	err = json.NewDecoder(resp.Body).Decode(&again)
	resp.Body.Close()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nresubmitted identical deck: %s state=%s cached=%v (temperature %14.6e)\n",
		again.ID, again.State, again.Cached, again.Result.Temperature)

	// The scrape endpoint reflects the same run.
	r, err := apiClient.Get(base + "/metrics")
	if err != nil {
		log.Fatal(err)
	}
	text, _ := io.ReadAll(r.Body)
	r.Body.Close()
	fmt.Println("\nservice counters:")
	for _, line := range strings.Split(string(text), "\n") {
		if strings.HasPrefix(line, "teaserve_jobs_") && !strings.HasPrefix(line, "#") {
			fmt.Println("  " + line)
		}
	}
}
