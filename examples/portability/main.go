// Portability: reproduce the paper's Section V analysis end to end —
// collect runtimes for every implementation family on every platform and
// reduce them to Pennycook performance-portability scores.
//
// Two platform sets are analysed, exactly like the paper:
//
//  1. the three modeled study machines (Xeon E5-2660 v4, KNL, P100) at the
//     paper's 4000^2 workload, and
//  2. real measured runtimes of this host's ports at a reduced mesh, with
//     the host's "CPU-style" and "GPU-style" execution treated as two
//     platforms.
package main

import (
	"fmt"
	"log"
	"sort"
	"time"

	tealeaf "github.com/warwick-hpsc/tealeaf-go"
)

// families groups versions the way Table III combines the manual ports
// into one "Manual" application.
var families = map[string][]string{
	"Manual": {"manual-omp", "manual-mpi", "manual-mpi-omp", "manual-openacc-cpu", "manual-cuda", "manual-openacc-gpu"},
	"OPS":    {"ops-openmp", "ops-mpi", "ops-mpi-omp", "ops-mpi-tiled", "ops-cuda", "ops-openacc"},
	"Kokkos": {"kokkos-openmp", "kokkos-cuda"},
	"RAJA":   {"raja-openmp", "raja-cuda"},
}

func main() {
	fmt.Println("=== modeled study machines, 4000^2 (paper scale) ===")
	modeled()
	fmt.Println()
	fmt.Println("=== this host, measured at 128^2 ===")
	measuredOnHost()
}

func modeled() {
	platforms := tealeaf.ModeledMachines()
	times := map[string]map[string]float64{}
	for fam, versions := range families {
		times[fam] = map[string]float64{}
		for _, v := range versions {
			for _, m := range platforms {
				if sec, ok := tealeaf.ModeledTime(v, m, 4000); ok {
					if cur, seen := times[fam][m]; !seen || sec < cur {
						times[fam][m] = sec // family = its best version per machine
					}
				}
			}
		}
	}
	printScores(times, platforms)
}

func measuredOnHost() {
	cfg := tealeaf.Benchmark(128)
	cfg.EndStep = 2
	// Treat the host's CPU-style and simulated-GPU execution as two
	// platforms; a family's time on a platform is its best version there.
	times := map[string]map[string]float64{}
	for fam, versions := range families {
		times[fam] = map[string]float64{}
		for _, v := range versions {
			info := lookup(v)
			platform := "host-cpu"
			if info.GPU {
				platform = "host-gpu"
			}
			start := time.Now()
			if _, err := tealeaf.Run(cfg, tealeaf.Options{Version: v}); err != nil {
				log.Fatalf("%s: %v", v, err)
			}
			sec := time.Since(start).Seconds()
			if cur, seen := times[fam][platform]; !seen || sec < cur {
				times[fam][platform] = sec
			}
		}
	}
	printScores(times, []string{"host-cpu", "host-gpu"})
}

func lookup(name string) tealeaf.VersionInfo {
	for _, v := range tealeaf.Versions() {
		if v.Name == name {
			return v
		}
	}
	log.Fatalf("unknown version %s", name)
	return tealeaf.VersionInfo{}
}

func printScores(times map[string]map[string]float64, platforms []string) {
	effs := tealeaf.AppEfficiencies(times, platforms)
	fams := make([]string, 0, len(times))
	for f := range times {
		fams = append(fams, f)
	}
	sort.Strings(fams)
	fmt.Printf("%-8s", "family")
	for _, p := range platforms {
		fmt.Printf("  %12s", p)
	}
	fmt.Printf("  %10s\n", "P (app)")
	for _, f := range fams {
		fmt.Printf("%-8s", f)
		byPlatform := map[string]tealeaf.Efficiency{}
		for _, e := range effs[f] {
			byPlatform[e.Platform] = e
		}
		for _, p := range platforms {
			e := byPlatform[p]
			if !e.Supported {
				fmt.Printf("  %12s", "n/a")
			} else {
				fmt.Printf("  %11.1f%%", 100*e.Value)
			}
		}
		fmt.Printf("  %9.1f%%\n", 100*tealeaf.Pennycook(effs[f]))
	}
}
