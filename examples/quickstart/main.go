// Quickstart: run the standard tea_bm benchmark with one version and print
// the QA field summary — the smallest complete use of the public API.
package main

import (
	"fmt"
	"log"
	"os"

	tealeaf "github.com/warwick-hpsc/tealeaf-go"
)

func main() {
	// The paper's workload at a laptop-friendly resolution: ten implicit
	// conduction steps on a 250x250 mesh, CG solver, eps 1e-15.
	cfg := tealeaf.Benchmark(250)

	res, err := tealeaf.Run(cfg, tealeaf.Options{
		Version: "manual-omp", // hand-parallelised shared-memory port
		Log:     os.Stdout,    // per-step solver log
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nfinal state after %d steps (%d CG iterations in total):\n",
		len(res.Steps), res.TotalIterations)
	fmt.Printf("  volume          %14.6e\n", res.Final.Volume)
	fmt.Printf("  mass            %14.6e\n", res.Final.Mass)
	fmt.Printf("  internal energy %14.6e\n", res.Final.InternalEnergy)
	fmt.Printf("  temperature     %14.6e\n", res.Final.Temperature)

	// With reflective boundaries the conduction operator conserves the
	// volume integral of u, so Temperature must equal the initial internal
	// energy — a built-in sanity check on any run.
	fmt.Printf("  conservation    %14.6e (|temp - ie| / ie)\n",
		abs(res.Final.Temperature-res.Final.InternalEnergy)/res.Final.InternalEnergy)
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
