// Multimaterial: build a custom problem programmatically — a dense cold
// background, a hot strip, a light circular inclusion and a point source —
// and watch heat diffuse between the materials over time. Demonstrates
// constructing a Config without a tea.in deck and reading per-step
// summaries.
package main

import (
	"fmt"
	"log"
	"math"

	tealeaf "github.com/warwick-hpsc/tealeaf-go"
)

func main() {
	cfg := tealeaf.Benchmark(200) // start from the standard deck...
	cfg.EndStep = 8
	cfg.SummaryFrequency = 1 // ...but summarise every step
	cfg.States = []tealeaf.State{
		// State 1 is the background and must cover everything.
		{Index: 1, Density: 100, Energy: 0.0001, Geometry: tealeaf.GeomRectangle},
		// A hot, light strip along the bottom-left (the tea_bm layout).
		{Index: 2, Density: 0.1, Energy: 25, Geometry: tealeaf.GeomRectangle,
			XMin: 0, XMax: 1, YMin: 1, YMax: 2},
		// A circular inclusion of intermediate material in the centre.
		{Index: 3, Density: 5, Energy: 4, Geometry: tealeaf.GeomCircular,
			XMin: 5, YMin: 5, Radius: 1.5},
		// A point heat source near the top-right corner.
		{Index: 4, Density: 1, Energy: 80, Geometry: tealeaf.GeomPoint,
			XMin: 8.5, YMin: 8.5},
	}

	res, err := tealeaf.Run(cfg, tealeaf.Options{Version: "ops-openmp"})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("step   sim time    iterations   temperature total   drift")
	initialTemp := math.NaN()
	for _, s := range res.Steps {
		if s.Totals == nil {
			continue
		}
		if math.IsNaN(initialTemp) {
			initialTemp = s.Totals.Temperature
		}
		drift := math.Abs(s.Totals.Temperature-initialTemp) / initialTemp
		fmt.Printf("%4d   %8.4f    %10d   %17.10f   %8.2e\n",
			s.Step, s.Time, s.Stats.Iterations, s.Totals.Temperature, drift)
	}
	fmt.Println("\nthe temperature total stays constant: reflective boundaries make")
	fmt.Println("the solve conservative, however many materials are in the box.")
}
