// Heatmap: run a problem with a few heat sources, snapshot the final
// temperature field through the public API and render it as an ASCII
// heatmap in the terminal — plus a ParaView-loadable VTK file. Shows the
// Snapshot/WriteVTK inspection path every port supports (including the
// distributed and device ports, which gather/copy back transparently).
package main

import (
	"fmt"
	"log"
	"math"
	"os"

	tealeaf "github.com/warwick-hpsc/tealeaf-go"
)

const shades = " .:-=+*#%@"

func main() {
	cfg := tealeaf.Benchmark(96)
	cfg.EndStep = 12
	cfg.InitialTimestep = 0.02 // diffuse further so the picture is interesting
	cfg.States = []tealeaf.State{
		{Index: 1, Density: 10, Energy: 0.01, Geometry: tealeaf.GeomRectangle},
		{Index: 2, Density: 0.2, Energy: 30, Geometry: tealeaf.GeomCircular,
			XMin: 2.5, YMin: 7.5, Radius: 1.2},
		{Index: 3, Density: 0.2, Energy: 20, Geometry: tealeaf.GeomCircular,
			XMin: 7, YMin: 3, Radius: 1.8},
		{Index: 4, Density: 0.5, Energy: 40, Geometry: tealeaf.GeomRectangle,
			XMin: 4.5, XMax: 5.5, YMin: 8.5, YMax: 9.5},
	}

	// The distributed OPS variant: the snapshot gathers the chunks back.
	res, err := tealeaf.Run(cfg, tealeaf.Options{
		Version:  "ops-mpi",
		Ranks:    4,
		Snapshot: true,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Log-scale the temperatures into ASCII shades.
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, v := range res.Temperature {
		lo = math.Min(lo, v)
		hi = math.Max(hi, v)
	}
	fmt.Printf("temperature field after %d steps (u in [%.3g, %.3g], %s):\n\n",
		len(res.Steps), lo, hi, res.Version)
	logLo, logHi := math.Log(lo), math.Log(hi)
	// Sample every other row so cells come out roughly square in a terminal.
	for j := res.Ny - 1; j >= 0; j -= 2 {
		for i := 0; i < res.Nx; i++ {
			v := math.Log(res.Temperature[j*res.Nx+i])
			t := (v - logLo) / (logHi - logLo)
			idx := int(t * float64(len(shades)-1))
			fmt.Print(string(shades[idx]))
		}
		fmt.Println()
	}

	out := "heatmap.vtk"
	if err := tealeaf.WriteVTK(out, cfg, res); err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stdout, "\nwrote %s (open in ParaView/VisIt)\n", out)
}
