// TestTilingSweepsGate guards the headline metric of the cross-iteration
// loop-chain tiling work: with the deferred-reduction API, a diagonal-
// preconditioned CG iteration must cost fewer than 3.0 full-field sweeps
// (chain flushes), and must not regress against the committed
// BENCH_tiling.json baseline produced by `make bench-tiling`.
//
// The sweep count is schedule-driven — it depends on where the solver's
// true sync points fall, not on mesh size or tile geometry — so the gate
// can re-measure on a small mesh and compare against a baseline captured
// at benchmark scale. A small slack absorbs the once-per-solve setup
// flushes amortised over a different iteration count.
package tealeaf_test

import (
	"encoding/json"
	"os"
	"testing"

	"github.com/warwick-hpsc/tealeaf-go/internal/config"
	"github.com/warwick-hpsc/tealeaf-go/internal/driver"
	"github.com/warwick-hpsc/tealeaf-go/internal/grid"
	"github.com/warwick-hpsc/tealeaf-go/internal/ops"
	"github.com/warwick-hpsc/tealeaf-go/internal/solver"

	opsport "github.com/warwick-hpsc/tealeaf-go/internal/backends/opsport"
)

// tilingBaseline mirrors the BENCH_tiling.json fields the gate reads.
type tilingBaseline struct {
	Rows []struct {
		Version string `json:"version"`
		Tiled   struct {
			SweepsPerIter float64 `json:"sweeps_per_iter"`
		} `json:"tiled"`
		Error string `json:"error"`
	} `json:"rows"`
}

func TestTilingSweepsGate(t *testing.T) {
	// The absolute bar from the design: cg_calc_p + halo + cg_calc_w chain
	// into one flush, cg_calc_ur finalizes at the rz demand — under 3.0
	// effective sweeps per iteration in steady state.
	bar := 3.0
	if buf, err := os.ReadFile("BENCH_tiling.json"); err == nil {
		var base tilingBaseline
		if err := json.Unmarshal(buf, &base); err != nil {
			t.Fatalf("BENCH_tiling.json is unreadable: %v", err)
		}
		for _, r := range base.Rows {
			if r.Version == "ops-serial" && r.Error == "" && r.Tiled.SweepsPerIter > 0 {
				// 0.25 sweeps of slack covers the fixed setup flushes
				// amortised over a different pinned iteration count.
				if b := r.Tiled.SweepsPerIter + 0.25; b < bar {
					bar = b
				}
			}
		}
	} else {
		t.Logf("no committed BENCH_tiling.json (%v); enforcing the absolute 3.0 bar only", err)
	}

	const n, iters = 64, 40
	cfg := config.BenchmarkN(n)
	cfg.Preconditioner = config.PrecondJacDiag
	cfg.MaxIters = iters
	cfg.Eps = 1e-300
	p, err := opsport.New(opsport.Options{Backend: ops.BackendSerial, Tiling: true, TileX: 16, TileY: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	m, err := grid.NewMesh(cfg.XMin, cfg.XMax, cfg.YMin, cfg.YMax, cfg.NX, cfg.NY)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Generate(m, cfg.States); err != nil {
		t.Fatal(err)
	}
	p.HaloExchange([]driver.FieldID{driver.FieldDensity, driver.FieldEnergy0}, 2)
	p.SetField()
	p.HaloExchange([]driver.FieldID{driver.FieldDensity, driver.FieldEnergy1}, 2)
	dt := cfg.InitialTimestep
	p.SolveInit(cfg.Coefficient, dt/(m.Dx*m.Dx), dt/(m.Dy*m.Dy), cfg.Preconditioner)
	pre := p.TilingSnapshot()
	st, err := solver.Solve(p, solver.FromConfig(&cfg))
	if err != nil {
		t.Fatal(err)
	}
	if st.Iterations != iters {
		t.Fatalf("solve ran %d iterations, want %d pinned", st.Iterations, iters)
	}
	snap := p.TilingSnapshot().Sub(pre)
	if snap.Chains == 0 {
		t.Fatal("no multi-loop chains flushed: loops are not crossing the iteration boundary")
	}
	got := float64(snap.Flushes) / float64(iters)
	t.Logf("measured %.3f sweeps/iter (%d flushes / %d iters), gate %.3f",
		got, snap.Flushes, iters, bar)
	if got >= 3.0 {
		t.Errorf("sweeps/iter = %.3f, want < 3.0 (cache-residency claim broken)", got)
	}
	if got >= bar {
		t.Errorf("sweeps/iter = %.3f regressed past the committed baseline gate %.3f", got, bar)
	}
}
