module github.com/warwick-hpsc/tealeaf-go

go 1.22
