// TestDocsLint keeps the operator documentation and the code from
// drifting apart, in both directions:
//
//   - every metric name a doc mentions must still be registered somewhere
//     in the Go sources (no ghost metrics in runbooks);
//   - every metric the serving plane registers must be documented;
//   - every teaserve flag must appear in docs/OPERATIONS.md's flag
//     reference.
//
// It is pure text analysis — no server is started — so it runs in the CI
// docs-lint step in milliseconds.
package tealeaf_test

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// lintDocs are the operator-facing documents whose metric and flag
// references the lint cross-checks.
var lintDocs = []string{
	"README.md",
	"DESIGN.md",
	"EXPERIMENTS.md",
	filepath.Join("docs", "OPERATIONS.md"),
	filepath.Join("docs", "PORTABILITY.md"),
}

var metricToken = regexp.MustCompile(`\b(?:teaserve|tealeaf)_[a-z][a-z0-9_]*`)

// goSourceTokens walks every non-test .go file and collects the metric
// tokens appearing in it (series literals include label sets, so tokens
// are matched on raw text, not parsed strings).
func goSourceTokens(t *testing.T) map[string]bool {
	t.Helper()
	tokens := map[string]bool{}
	err := filepath.Walk(".", func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		if info.IsDir() {
			if name := info.Name(); path != "." && (name == "testdata" || strings.HasPrefix(name, ".")) {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		buf, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		for _, tok := range metricToken.FindAllString(string(buf), -1) {
			tokens[tok] = true
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return tokens
}

// baseMetric strips the exposition suffixes a doc may quote for a
// histogram series.
func baseMetric(tok string) string {
	for _, suffix := range []string{"_bucket", "_sum", "_count"} {
		if s, ok := strings.CutSuffix(tok, suffix); ok {
			return s
		}
	}
	return tok
}

func TestDocsLintMetricsExist(t *testing.T) {
	code := goSourceTokens(t)
	for _, doc := range lintDocs {
		buf, err := os.ReadFile(doc)
		if err != nil {
			t.Errorf("doc %s unreadable: %v", doc, err)
			continue
		}
		for _, tok := range metricToken.FindAllString(string(buf), -1) {
			if !code[tok] && !code[baseMetric(tok)] {
				t.Errorf("%s mentions metric %q, which no Go source registers", doc, tok)
			}
		}
	}
}

func TestDocsLintMetricsDocumented(t *testing.T) {
	var docs strings.Builder
	for _, doc := range lintDocs {
		buf, err := os.ReadFile(doc)
		if err != nil {
			t.Fatalf("doc %s unreadable: %v", doc, err)
		}
		docs.Write(buf)
		docs.WriteByte('\n')
	}
	docText := docs.String()
	// Registered series live in string literals like
	// `teaserve_x_total` or `teaserve_x_total{label="v"}`; take the base
	// name before any label set.
	literal := regexp.MustCompile("[\"`]((?:teaserve|tealeaf)_[a-z][a-z0-9_]*)[{\"`]")
	err := filepath.Walk(".", func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		if info.IsDir() {
			if name := info.Name(); path != "." && (name == "testdata" || strings.HasPrefix(name, ".")) {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		buf, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		for _, m := range literal.FindAllStringSubmatch(string(buf), -1) {
			if name := m[1]; !strings.Contains(docText, name) {
				t.Errorf("%s registers metric %q, which no operator doc mentions", path, name)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestDocsLintFlagsDocumented(t *testing.T) {
	buf, err := os.ReadFile(filepath.Join("cmd", "teaserve", "main.go"))
	if err != nil {
		t.Fatal(err)
	}
	ops, err := os.ReadFile(filepath.Join("docs", "OPERATIONS.md"))
	if err != nil {
		t.Fatal(err)
	}
	flagDef := regexp.MustCompile(`flag\.(?:String|Int|Bool|Duration)\("([a-z][a-z0-9-]*)"`)
	for _, m := range flagDef.FindAllStringSubmatch(string(buf), -1) {
		if name := m[1]; !strings.Contains(string(ops), "-"+name) {
			t.Errorf("teaserve flag -%s is not documented in docs/OPERATIONS.md", name)
		}
	}
}
